"""Trajectory math of the mobility models and position_at interpolation."""

from __future__ import annotations

import math
import random

import pytest

from repro.errors import ConfigurationError
from repro.mobility.models import (
    CircularOrbit,
    RandomWalk,
    RandomWaypoint,
    Stationary,
    TrajectoryLeg,
)
from repro.sim.simulator import Simulator

AREA = (0.0, 0.0, 20.0, 20.0)


def _sample_times(horizon: float, step: float = 0.37):
    t = step
    while t <= horizon:
        yield t
        t += step


# ---------------------------------------------------------------------------
# Legs
# ---------------------------------------------------------------------------

def test_trajectory_leg_interpolates_and_clamps():
    leg = TrajectoryLeg(start_time=1.0, duration=2.0, start=(0.0, 0.0), velocity=(3.0, 4.0))
    assert leg.position_at(1.0) == (0.0, 0.0)
    assert leg.position_at(2.0) == (3.0, 4.0)
    assert leg.end == (6.0, 8.0)
    assert leg.end_time == 3.0
    assert leg.speed == pytest.approx(5.0)
    # Queries outside the span clamp to the endpoints.
    assert leg.position_at(0.0) == (0.0, 0.0)
    assert leg.position_at(99.0) == leg.end


# ---------------------------------------------------------------------------
# Stationary
# ---------------------------------------------------------------------------

def test_stationary_never_moves_and_schedules_nothing():
    sim = Simulator(seed=1)
    phy = type("PhyStub", (), {"sim": sim, "name": "stub", "position": (3.0, 4.0)})()
    model = Stationary()
    model.attach(phy)
    model.start()
    assert sim.pending_events == 0  # static models need no update events
    assert model.position_at(0.0) == (3.0, 4.0)
    assert model.position_at(123.4) == (3.0, 4.0)


def test_stationary_explicit_position_overrides_binding_origin():
    model = Stationary(position=(7.0, 8.0)).bind(random.Random(1), (0.0, 0.0))
    assert model.position_at(5.0) == (7.0, 8.0)


def test_models_require_binding_before_queries():
    with pytest.raises(ConfigurationError, match="bound"):
        Stationary().position_at(0.0)
    with pytest.raises(ConfigurationError, match="bound"):
        RandomWaypoint(area=AREA).position_at(1.0)


def test_rebinding_is_rejected():
    model = Stationary().bind(random.Random(1), (0.0, 0.0))
    with pytest.raises(ConfigurationError, match="already bound"):
        model.bind(random.Random(2), (1.0, 1.0))


# ---------------------------------------------------------------------------
# Random waypoint
# ---------------------------------------------------------------------------

def test_random_waypoint_stays_inside_area():
    model = RandomWaypoint(area=AREA, speed_range=(1.0, 3.0), pause_time=0.5)
    model.bind(random.Random(42), (10.0, 10.0))
    for t in _sample_times(120.0):
        x, y = model.position_at(t)
        assert 0.0 <= x <= 20.0 and 0.0 <= y <= 20.0


def test_random_waypoint_leg_speeds_and_pauses():
    model = RandomWaypoint(area=AREA, speed_range=(1.0, 3.0), pause_time=0.5)
    model.bind(random.Random(7), (10.0, 10.0))
    model.position_at(60.0)  # force trajectory generation
    move_legs = [leg for leg in model.legs if leg.speed > 0]
    pause_legs = [leg for leg in model.legs if leg.speed == 0]
    assert move_legs and pause_legs
    for leg in move_legs:
        assert 1.0 - 1e-9 <= leg.speed <= 3.0 + 1e-9
    for leg in pause_legs:
        assert leg.duration == pytest.approx(0.5)
        # Position is frozen across a pause.
        assert leg.position_at(leg.start_time) == leg.position_at(leg.end_time)


def test_random_waypoint_position_is_linear_within_a_leg():
    model = RandomWaypoint(area=AREA, speed_range=(2.0, 2.0))
    model.bind(random.Random(3), (5.0, 5.0))
    model.position_at(30.0)
    leg = next(leg for leg in model.legs if leg.speed > 0 and leg.duration > 1.0)
    mid = leg.start_time + leg.duration / 2.0
    expected = ((leg.start[0] + leg.end[0]) / 2.0, (leg.start[1] + leg.end[1]) / 2.0)
    assert model.position_at(mid) == pytest.approx(expected)


def test_random_waypoint_is_deterministic_per_stream_seed():
    times = list(_sample_times(45.0))
    trajectories = []
    for _ in range(2):
        model = RandomWaypoint(area=AREA, speed_range=(0.5, 4.0), pause_time=0.25)
        model.bind(random.Random(99), (1.0, 2.0))
        trajectories.append([model.position_at(t) for t in times])
    assert trajectories[0] == trajectories[1]
    other = RandomWaypoint(area=AREA, speed_range=(0.5, 4.0), pause_time=0.25)
    other.bind(random.Random(100), (1.0, 2.0))
    assert [other.position_at(t) for t in times] != trajectories[0]


def test_random_waypoint_query_order_does_not_change_the_trajectory():
    eager = RandomWaypoint(area=AREA, speed_range=(1.0, 2.0))
    eager.bind(random.Random(5), (0.0, 0.0))
    lazy = RandomWaypoint(area=AREA, speed_range=(1.0, 2.0))
    lazy.bind(random.Random(5), (0.0, 0.0))
    # One model is queried densely, the other jumps straight to the end:
    # forward-only generation must produce the identical trajectory.
    dense = [eager.position_at(t) for t in _sample_times(50.0)]
    assert lazy.position_at(50.0) == eager.position_at(50.0)
    assert [lazy.position_at(t) for t in _sample_times(50.0)] == dense


def test_positions_before_the_binding_time_are_the_origin():
    model = RandomWaypoint(area=AREA, speed_range=(1.0, 2.0))
    model.bind(random.Random(5), (4.0, 4.0), start_time=10.0)
    assert model.position_at(0.0) == (4.0, 4.0)
    assert model.position_at(10.0) == (4.0, 4.0)
    assert model.position_at(20.0) != (4.0, 4.0)


# ---------------------------------------------------------------------------
# Random walk
# ---------------------------------------------------------------------------

def test_random_walk_reflects_off_the_boundaries():
    model = RandomWalk(area=(0.0, 0.0, 4.0, 4.0), speed_range=(3.0, 3.0), leg_duration=5.0)
    model.bind(random.Random(11), (2.0, 2.0))
    for t in _sample_times(200.0, step=0.11):
        x, y = model.position_at(t)
        assert -1e-9 <= x <= 4.0 + 1e-9
        assert -1e-9 <= y <= 4.0 + 1e-9
    # A fast walker in a tiny box must actually have reflected.
    assert any(leg.duration < 5.0 - 1e-9 for leg in model.legs)


def test_random_walk_leg_speed_within_range():
    model = RandomWalk(area=AREA, speed_range=(1.5, 2.5), leg_duration=2.0)
    model.bind(random.Random(21), (10.0, 10.0))
    model.position_at(60.0)
    for leg in model.legs:
        if leg.speed > 0:
            assert 1.5 - 1e-9 <= leg.speed <= 2.5 + 1e-9


def test_random_walk_is_deterministic_per_stream_seed():
    times = list(_sample_times(40.0))
    first = RandomWalk(area=AREA, speed_range=(0.5, 3.0))
    first.bind(random.Random(8), (3.0, 3.0))
    second = RandomWalk(area=AREA, speed_range=(0.5, 3.0))
    second.bind(random.Random(8), (3.0, 3.0))
    assert ([first.position_at(t) for t in times]
            == [second.position_at(t) for t in times])


# ---------------------------------------------------------------------------
# Circular orbit
# ---------------------------------------------------------------------------

def test_circular_orbit_closed_form():
    model = CircularOrbit(radius=4.0, period=8.0, center=(1.0, 1.0), phase_rad=0.0)
    model.bind(random.Random(1), (0.0, 0.0))
    assert model.position_at(0.0) == pytest.approx((5.0, 1.0))
    assert model.position_at(2.0) == pytest.approx((1.0, 5.0))  # quarter turn
    assert model.position_at(4.0) == pytest.approx((-3.0, 1.0))
    for t in _sample_times(16.0):
        x, y = model.position_at(t)
        assert math.hypot(x - 1.0, y - 1.0) == pytest.approx(4.0)


def test_circular_orbit_center_derived_from_binding_position():
    model = CircularOrbit(radius=5.0, period=10.0)  # default phase: -pi/2
    model.bind(random.Random(1), (2.0, 3.0))
    assert model.center == pytest.approx((2.0, 8.0))
    assert model.position_at(0.0) == pytest.approx((2.0, 3.0))
    # Half a period later the node is diametrically opposite.
    assert model.position_at(5.0) == pytest.approx((2.0, 13.0))
    assert model.position_at(10.0) == pytest.approx((2.0, 3.0))


def test_circular_orbit_period_sign_sets_direction():
    ccw = CircularOrbit(radius=1.0, period=4.0, center=(0.0, 0.0), phase_rad=0.0)
    ccw.bind(random.Random(1), (0.0, 0.0))
    cw = CircularOrbit(radius=1.0, period=-4.0, center=(0.0, 0.0), phase_rad=0.0)
    cw.bind(random.Random(1), (0.0, 0.0))
    assert ccw.position_at(1.0) == pytest.approx((0.0, 1.0))
    assert cw.position_at(1.0) == pytest.approx((0.0, -1.0))


# ---------------------------------------------------------------------------
# Update events and precision independence
# ---------------------------------------------------------------------------

def _attach_to_sim(model, seed=1, position=(0.0, 0.0)):
    sim = Simulator(seed=seed)
    phy = type("PhyStub", (), {"sim": sim, "name": "stub", "position": position})()
    model.attach(phy)
    return sim, phy


def test_update_events_refresh_the_position_snapshot():
    model = CircularOrbit(radius=2.0, period=4.0, update_interval=0.25)
    sim, phy = _attach_to_sim(model)
    model.start()
    sim.run(until=1.0)
    # The snapshot tracks the analytic position at the last update event.
    assert phy.position == pytest.approx(model.position_at(sim.now), abs=1e-6)
    assert model.updates == 4


def test_update_events_respect_stop_time():
    model = CircularOrbit(radius=2.0, period=4.0, update_interval=0.25)
    sim, _ = _attach_to_sim(model)
    model.start(stop_time=1.0)
    sim.run(until=50.0)
    assert sim.now == 50.0
    assert sim.pending_events == 0  # the queue drained at the stop time


def test_position_at_is_independent_of_update_interval():
    times = [0.3, 1.7, 4.9, 9.2]
    samples = []
    for interval in (0.05, 0.8):
        model = RandomWaypoint(area=AREA, speed_range=(1.0, 2.0), update_interval=interval)
        sim, _ = _attach_to_sim(model, seed=6, position=(10.0, 10.0))
        model.start()
        sim.run(until=10.0)
        samples.append([model.position_at(t) for t in times])
    # Positions interpolate analytically between waypoints: the scheduler
    # tick rate affects snapshot freshness only, never the trajectory.
    assert samples[0] == samples[1]


def test_invalid_parameters_are_rejected():
    with pytest.raises(ConfigurationError):
        RandomWaypoint(area=(0.0, 0.0, -1.0, 5.0))
    with pytest.raises(ConfigurationError):
        RandomWaypoint(area=AREA, speed_range=(-1.0, 2.0))
    with pytest.raises(ConfigurationError):
        RandomWalk(area=AREA, leg_duration=0.0)
    with pytest.raises(ConfigurationError):
        CircularOrbit(radius=0.0, period=1.0)
    with pytest.raises(ConfigurationError):
        CircularOrbit(radius=1.0, period=0.0)
    with pytest.raises(ConfigurationError):
        RandomWalk(area=AREA, update_interval=0.0)
