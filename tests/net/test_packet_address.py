"""Unit tests for the packet model and IP addressing."""

from __future__ import annotations

import pytest

from repro.errors import AddressError
from repro.net.address import IpAddress
from repro.net.packet import (
    IP_HEADER_BYTES,
    TCP_HEADER_BYTES,
    UDP_HEADER_BYTES,
    Packet,
    TcpHeader,
)

SRC, DST = IpAddress("10.0.0.1"), IpAddress("10.0.0.2")


# ---------------------------------------------------------------------------
# IpAddress
# ---------------------------------------------------------------------------

def test_ip_parse_and_format():
    address = IpAddress("192.168.1.17")
    assert str(address) == "192.168.1.17"
    assert IpAddress(address.value) == address
    assert IpAddress(address) == address


def test_ip_host_constructor():
    assert str(IpAddress.host(3)) == "10.0.0.3"
    assert IpAddress.host(1) != IpAddress.host(2)


def test_ip_validation():
    for bad in ("10.0.0", "10.0.0.256", "a.b.c.d", -1, 2 ** 32):
        with pytest.raises(AddressError):
            IpAddress(bad)


def test_ip_hash_equality_and_ordering():
    assert len({IpAddress("10.0.0.1"), IpAddress("10.0.0.1")}) == 1
    assert IpAddress("10.0.0.1") < IpAddress("10.0.0.2")
    assert IpAddress("10.0.0.1") == "10.0.0.1"


# ---------------------------------------------------------------------------
# Packets
# ---------------------------------------------------------------------------

def test_tcp_segment_sizes():
    header = TcpHeader(src_port=1, dst_port=2, flags_ack=True)
    packet = Packet.tcp_segment(SRC, DST, header, payload_bytes=1357)
    assert packet.size_bytes == 1357 + TCP_HEADER_BYTES + IP_HEADER_BYTES
    assert packet.is_tcp and not packet.is_udp


def test_udp_datagram_sizes():
    packet = Packet.udp_datagram(SRC, DST, 9000, 9001, payload_bytes=1045)
    assert packet.size_bytes == 1045 + UDP_HEADER_BYTES + IP_HEADER_BYTES
    assert packet.is_udp and not packet.is_tcp


def test_broadcast_control_packet():
    packet = Packet.broadcast_control(SRC, payload_bytes=64)
    assert str(packet.ip.dst) == "255.255.255.255"
    assert packet.ip.protocol == "flood"
    assert packet.size_bytes == 64 + IP_HEADER_BYTES


def test_pure_tcp_ack_detection():
    pure = Packet.tcp_segment(SRC, DST, TcpHeader(1, 2, flags_ack=True))
    with_data = Packet.tcp_segment(SRC, DST, TcpHeader(1, 2, flags_ack=True), payload_bytes=10)
    syn_ack = Packet.tcp_segment(SRC, DST, TcpHeader(1, 2, flags_ack=True, flags_syn=True))
    fin = Packet.tcp_segment(SRC, DST, TcpHeader(1, 2, flags_ack=True, flags_fin=True))
    assert pure.is_pure_tcp_ack
    assert not with_data.is_pure_tcp_ack
    assert not syn_ack.is_pure_tcp_ack
    assert not fin.is_pure_tcp_ack


def test_packet_cannot_carry_both_transports():
    from repro.net.packet import IpHeader, UdpHeader
    with pytest.raises(ValueError):
        Packet(ip=IpHeader(src=SRC, dst=DST), tcp=TcpHeader(1, 2), udp=UdpHeader(1, 2))
    with pytest.raises(ValueError):
        Packet(ip=IpHeader(src=SRC, dst=DST), payload_bytes=-1)


def test_packet_uids_and_copy():
    first = Packet.broadcast_control(SRC, 10)
    second = Packet.broadcast_control(SRC, 10)
    assert first.uid != second.uid
    duplicate = first.copy()
    assert duplicate.uid != first.uid
    assert duplicate.size_bytes == first.size_bytes


def test_ttl_decrement_preserves_uid():
    packet = Packet.broadcast_control(SRC, 10)
    forwarded = packet.with_decremented_ttl()
    assert forwarded.ip.ttl == packet.ip.ttl - 1
    assert forwarded.uid == packet.uid


def test_tcp_header_flags_description():
    header = TcpHeader(1, 2, flags_syn=True, flags_ack=True)
    assert header.is_connection_setup
    assert "SYN" in header.describe_flags()
    assert TcpHeader(1, 2).describe_flags() == "-"
