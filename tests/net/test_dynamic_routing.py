"""DSDV routing: table semantics, sequence-number rules, convergence, repair."""

from __future__ import annotations

import pytest

from repro.core.policies import broadcast_aggregation
from repro.errors import ConfigurationError, RoutingError
from repro.net.address import IpAddress
from repro.net.discovery import HelloConfig
from repro.net.dynamic_routing import (
    INFINITE_METRIC,
    DsdvConfig,
    DynamicRoutingTable,
    RouteEntry,
)
from repro.sim.simulator import Simulator
from repro.topology.mobile import MobileScenario

A = IpAddress("10.0.0.1")
B = IpAddress("10.0.0.2")
C = IpAddress("10.0.0.3")

FAST_DSDV = DsdvConfig(hello=HelloConfig(hello_interval=0.4),
                       advertise_interval=1.2)


def _entry(dest, via, metric=1, seq=0):
    return RouteEntry(destination=IpAddress(dest), next_hop=IpAddress(via),
                      metric=metric, sequence=seq)


class TestDynamicRoutingTable:
    def test_implements_the_static_interface(self):
        table = DynamicRoutingTable()
        table.add_route(B, C)
        assert table.next_hop(B) == C
        assert table.has_route(B)
        assert not table.has_route(A)
        assert len(table) == 1
        assert table.routes == {B: C}

    def test_missing_route_raises_routing_error(self):
        with pytest.raises(RoutingError):
            DynamicRoutingTable().next_hop(B)

    def test_default_route_backstops_misses(self):
        table = DynamicRoutingTable()
        table.set_default(C)
        assert table.next_hop(B) == C
        assert table.has_route(B)

    def test_withdrawn_route_behaves_like_no_route(self):
        table = DynamicRoutingTable()
        table.install(_entry(B, C, metric=INFINITE_METRIC, seq=3))
        assert not table.has_route(B)
        assert len(table) == 0
        with pytest.raises(RoutingError):
            table.next_hop(B)
        # ... but the entry (and its break sequence number) is retained.
        assert table.entry_for(B).sequence == 3

    def test_protocol_entries_supersede_static_injections(self):
        table = DynamicRoutingTable()
        table.add_route(B, C)
        assert table.entry_for(B).sequence < 0
        table.install(_entry(B, A, metric=2, seq=0))
        assert table.next_hop(B) == A

    def test_entries_iterate_in_sorted_destination_order(self):
        table = DynamicRoutingTable()
        table.install(_entry(C, A))
        table.install(_entry(B, A))
        assert [e.destination for e in table.entries()] == [B, C]

    def test_revision_counts_installs(self):
        table = DynamicRoutingTable()
        assert table.revision == 0
        table.install(_entry(B, C))
        table.install(_entry(C, B))
        assert table.revision == 2


def _chain_scenario(node_count=3, spacing=8.0, seed=1, duration=30.0,
                    config=FAST_DSDV):
    sim = Simulator(seed=seed)
    scenario = MobileScenario(sim, policy=broadcast_aggregation(),
                              stop_time=duration, routing="dsdv",
                              routing_config=config)
    for i in range(node_count):
        scenario.add_node((i * spacing, 0.0))
    return sim, scenario


class TestDsdvProtocol:
    def test_static_route_installers_are_rejected_under_dsdv(self):
        sim, scenario = _chain_scenario()
        with pytest.raises(ConfigurationError):
            scenario.connect_chain(1, 2, 3)
        with pytest.raises(ConfigurationError):
            scenario.connect_pair(1, 2)

    def test_unknown_routing_mode_rejected(self):
        sim = Simulator(seed=1)
        with pytest.raises(ConfigurationError, match="'static', 'dsdv', 'aodv'"):
            MobileScenario(sim, policy=broadcast_aggregation(), routing="olsr")

    def test_chain_converges_to_shortest_hop_count_routes(self):
        sim, scenario = _chain_scenario(node_count=4, duration=12.0)
        sim.run(until=12.0)
        nodes = scenario.network.nodes
        # End nodes see 3 destinations, each via their single physical neighbor.
        first, last = nodes[0], nodes[-1]
        assert len(first.routing_table) == 3
        assert first.routing_table.next_hop(last.ip) == nodes[1].ip
        assert first.router.table.entry_for(last.ip).metric == 3
        # The middle nodes route each direction out of the matching interface.
        middle = nodes[1]
        assert middle.routing_table.next_hop(first.ip) == first.ip
        assert middle.routing_table.next_hop(last.ip) == nodes[2].ip

    def test_own_destination_never_enters_the_table(self):
        sim, scenario = _chain_scenario(duration=10.0)
        sim.run(until=10.0)
        for node in scenario.network.nodes:
            assert node.router.table.entry_for(node.ip) is None

    def test_forwarding_works_end_to_end_over_discovered_routes(self):
        from repro.apps.cbr import CbrSource, UdpSink

        sim, scenario = _chain_scenario(node_count=3, duration=12.0)
        network = scenario.network
        sink = UdpSink(network.node(3))
        source = CbrSource(network.node(1), network.node(3).ip,
                           interval=0.1, payload_bytes=200)
        source.start(4.0)  # after convergence
        sim.run(until=12.0)
        assert sink.packets_received > 0
        assert sink.packets_received >= source.packets_sent * 0.9

    def test_control_plane_counted_in_mac_stats(self):
        sim, scenario = _chain_scenario(duration=8.0)
        sim.run(until=8.0)
        stats = scenario.network.node(2).mac_stats
        assert stats.routing_subframes_sent > 0
        assert 0.0 < stats.routing_overhead_fraction <= 1.0
        assert stats.routing_bytes_sent <= stats.payload_bytes_sent

    def test_sequence_numbers_advertised_are_even(self):
        sim, scenario = _chain_scenario(duration=10.0)
        sim.run(until=10.0)
        # Every adopted route's sequence number originated at the destination
        # as an even number; no link ever broke in this static chain.
        for node in scenario.network.nodes:
            for entry in node.router.table.valid_entries():
                assert entry.sequence % 2 == 0
                assert entry.sequence >= 0

    def test_link_break_marks_routes_with_odd_sequence_and_infinite_metric(self):
        sim, scenario = _chain_scenario(node_count=3, duration=40.0)
        sim.run(until=6.0)
        first = scenario.network.node(1)
        last = scenario.network.node(3)
        assert first.routing_table.has_route(last.ip)
        # Carry the middle relay out of range; nothing else connects 1 and 3.
        scenario.network.node(2).position = (100.0, 100.0)
        sim.run(until=6.0 + 4 * FAST_DSDV.hello.hold_time)
        entry = first.router.table.entry_for(scenario.network.node(2).ip)
        assert entry is not None and not entry.valid
        assert entry.metric == INFINITE_METRIC
        assert entry.sequence % 2 == 1
        assert not first.routing_table.has_route(last.ip)
        assert first.router.route_breaks > 0

    def test_route_repairs_after_relay_returns(self):
        sim, scenario = _chain_scenario(node_count=3, duration=60.0)
        relay = scenario.network.node(2)
        origin = relay.position
        sim.run(until=6.0)
        relay.position = (100.0, 100.0)
        sim.run(until=6.0 + 4 * FAST_DSDV.hello.hold_time)
        first = scenario.network.node(1)
        last = scenario.network.node(3)
        assert not first.routing_table.has_route(last.ip)
        relay.position = origin
        sim.run(until=sim.now + 6 * FAST_DSDV.advertise_interval)
        assert first.routing_table.has_route(last.ip)
        assert first.router.repair_latencies(last.ip)

    def test_summary_is_flat(self):
        sim, scenario = _chain_scenario(duration=6.0)
        sim.run(until=6.0)
        summary = scenario.network.node(1).router.summary()
        assert summary["updates_sent"] > 0
        assert summary["valid_routes"] == 2
        assert summary["neighbors"] == 1

    def test_same_seed_runs_are_identical_different_seeds_diverge(self):
        def signature(seed):
            sim, scenario = _chain_scenario(node_count=4, seed=seed, duration=10.0)
            sim.run(until=10.0)
            return repr([
                (node.router.summary(),
                 [str(e) for e in node.router.table.entries()])
                for node in scenario.network.nodes
            ]) + f"|{sim.events_processed}"

        assert signature(1) == signature(1)
        assert signature(1) != signature(2)


class TestDsdvConfig:
    @pytest.mark.parametrize("kwargs", [
        {"advertise_interval": 0.0},
        {"jitter_fraction": 1.0},
        {"triggered_delay": -0.1},
        {"entry_bytes": 0},
    ])
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            DsdvConfig(**kwargs)
