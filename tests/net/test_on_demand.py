"""AODV on-demand routing: discovery, expanding ring, RERR, lifetimes, wiring."""

from __future__ import annotations

import pytest

from repro.apps.cbr import CbrSource, UdpSink
from repro.channel.medium import WirelessChannel
from repro.core.policies import broadcast_aggregation
from repro.errors import ConfigurationError, RoutingError
from repro.mac.stats import ROUTING_CONTROL_PROTOCOLS
from repro.net.discovery import HelloConfig
from repro.net.dynamic_routing import DynamicRoutingTable, INFINITE_METRIC
from repro.net.on_demand import AodvConfig, AodvRouter
from repro.net.routing import RoutingTable
from repro.node.node import Node, VALID_ROUTING_MODES
from repro.sim.simulator import Simulator
from repro.topology.mobile import MobileScenario

FAST_AODV = AodvConfig(hello=HelloConfig(hello_interval=0.4),
                       active_route_lifetime=30.0,
                       ring_start_ttl=2, ring_ttl_increment=2)


def _chain_scenario(node_count=3, spacing=8.0, seed=1, duration=20.0,
                    config=FAST_AODV):
    sim = Simulator(seed=seed)
    scenario = MobileScenario(sim, policy=broadcast_aggregation(),
                              stop_time=duration, routing="aodv",
                              routing_config=config)
    for i in range(node_count):
        scenario.add_node((i * spacing, 0.0))
    return sim, scenario


def _send_probe(scenario, source_index, dest_index, at, port=9100):
    """One UDP datagram from source to destination at time ``at``."""
    network = scenario.network
    socket = network.node(source_index).udp.bind(port)
    scenario.sim.schedule_at(at, socket.send_to,
                             network.node(dest_index).ip, port, 32)
    return socket


class TestAodvConfig:
    @pytest.mark.parametrize("kwargs", [
        {"active_route_lifetime": 0.0},
        {"ring_start_ttl": 0},
        {"ring_ttl_increment": 0},
        {"ring_max_ttl": 1, "ring_start_ttl": 2},
        {"rreq_retries": -1},
        {"ring_timeout_per_ttl": 0.0},
        {"rebroadcast_jitter": -0.01},
        {"buffer_packets": 0},
        {"rerr_entry_bytes": 0},
    ])
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            AodvConfig(**kwargs)


class TestRoutingModeValidation:
    """Regression: an unknown ``routing=`` string fails fast at construction
    with a ValueError naming the valid modes — never later as an attribute
    error on a router that was silently not built."""

    def _channel(self):
        sim = Simulator(seed=1)
        return sim, WirelessChannel(sim)

    def test_node_rejects_unknown_mode_with_value_error(self):
        sim, channel = self._channel()
        with pytest.raises(ValueError) as excinfo:
            Node(sim, channel, index=1, routing="olsr")
        for mode in VALID_ROUTING_MODES:
            assert repr(mode) in str(excinfo.value)

    def test_node_rejection_is_also_a_configuration_error(self):
        sim, channel = self._channel()
        with pytest.raises(ConfigurationError):
            Node(sim, channel, index=1, routing="olsr")

    def test_scenario_rejects_unknown_mode_with_value_error(self):
        sim = Simulator(seed=1)
        with pytest.raises(ValueError, match="'static', 'dsdv', 'aodv'"):
            MobileScenario(sim, policy=broadcast_aggregation(), routing="Dsdv")

    def test_mismatched_routing_config_rejected(self):
        sim, channel = self._channel()
        with pytest.raises(ConfigurationError, match="DsdvConfig"):
            Node(sim, channel, index=1, routing="dsdv", routing_config=AodvConfig())

    def test_static_mode_rejects_a_routing_config(self):
        # A config with routing="static" means the caller almost certainly
        # forgot to switch modes; dropping it silently would run the wrong
        # control plane.
        sim, channel = self._channel()
        with pytest.raises(ConfigurationError, match="static"):
            Node(sim, channel, index=1, routing="static",
                 routing_config=AodvConfig())

    def test_all_valid_modes_construct(self):
        for mode in VALID_ROUTING_MODES:
            sim = Simulator(seed=1)
            node = Node(sim, WirelessChannel(sim), index=1, routing=mode)
            assert node.routing_mode == mode

    def test_aodv_node_wiring(self):
        sim, channel = self._channel()
        node = Node(sim, channel, index=1, routing="aodv")
        assert isinstance(node.router, AodvRouter)
        assert isinstance(node.routing_table, DynamicRoutingTable)
        assert node.router.table is node.routing_table

    def test_static_node_has_no_router_or_hooks(self):
        sim, channel = self._channel()
        node = Node(sim, channel, index=1)
        assert node.router is None
        assert isinstance(node.routing_table, RoutingTable)
        assert node.network._no_route_handler is None


class TestRouteDiscovery:
    def test_demand_driven_chain_discovery_delivers(self):
        sim, scenario = _chain_scenario(node_count=3)
        network = scenario.network
        sink = UdpSink(network.node(3))
        source = CbrSource(network.node(1), network.node(3).ip,
                           interval=0.1, payload_bytes=200)
        source.start(1.0)
        sim.run(until=10.0)
        assert sink.packets_received >= source.packets_sent * 0.9
        origin = network.node(1)
        entry = origin.router.table.entry_for(network.node(3).ip)
        assert entry is not None and entry.valid
        assert entry.metric == 2
        assert entry.next_hop == network.node(2).ip
        assert origin.router.discoveries_completed == 1
        # Demand-driven: no proactive advertisements exist, so a node nobody
        # asked about installs no multi-hop routes anywhere.
        assert origin.network.stats.no_route_buffered >= 1
        assert origin.network.stats.no_route_drops == 0

    def test_relay_learns_both_directions_from_one_discovery(self):
        sim, scenario = _chain_scenario(node_count=3)
        _send_probe(scenario, 1, 3, at=1.0)
        sim.run(until=5.0)
        relay = scenario.network.node(2)
        # Reverse route (from the RREQ) and forward route (from the RREP).
        for index in (1, 3):
            entry = relay.router.table.entry_for(scenario.network.node(index).ip)
            assert entry is not None and entry.valid and entry.metric == 1

    def test_expanding_ring_escalates_ttl(self):
        config = AodvConfig(hello=HelloConfig(hello_interval=0.4),
                            active_route_lifetime=30.0,
                            ring_start_ttl=1, ring_ttl_increment=2)
        sim, scenario = _chain_scenario(node_count=4, config=config)
        _send_probe(scenario, 1, 4, at=1.0)
        sim.run(until=8.0)
        origin = scenario.network.node(1).router
        # TTL 1 cannot reach a 3-hop destination: at least one retry happened
        # and the route was found on a wider ring.
        assert origin.rreqs_sent >= 2
        assert origin.discoveries_completed == 1
        entry = origin.table.entry_for(scenario.network.node(4).ip)
        assert entry is not None and entry.valid and entry.metric == 3

    def test_duplicate_rreqs_suppressed_by_request_id(self):
        # Diamond: two relays both hear the origin's RREQ; the destination
        # hears two copies but must reply only once.
        sim = Simulator(seed=3)
        scenario = MobileScenario(sim, policy=broadcast_aggregation(),
                                  stop_time=10.0, routing="aodv",
                                  routing_config=FAST_AODV)
        scenario.add_node((0.0, 0.0))      # 1: origin
        scenario.add_node((6.0, 4.0))      # 2: relay up
        scenario.add_node((6.0, -4.0))     # 3: relay down
        scenario.add_node((12.0, 0.0))     # 4: destination
        _send_probe(scenario, 1, 4, at=1.0)
        sim.run(until=6.0)
        destination = scenario.network.node(4).router
        assert destination.rreps_sent == 1
        assert destination.duplicate_rreqs_ignored >= 1
        assert scenario.network.node(1).router.discoveries_completed == 1

    def test_programmatic_discover_warms_up_without_traffic(self):
        sim, scenario = _chain_scenario(node_count=3)
        origin = scenario.network.node(1)
        target = scenario.network.node(3)
        sim.schedule_at(1.0, origin.router.discover, target.ip)
        sim.run(until=5.0)
        entry = origin.router.table.entry_for(target.ip)
        assert entry is not None and entry.valid and entry.metric == 2
        # The synthetic probe never enters the data plane: nothing reaches
        # the destination's stack and nothing counts as a dropped packet.
        assert target.network.stats.unhandled_protocol_drops == 0
        assert target.network.stats.delivered_local == 0
        assert origin.router.buffered_packets_dropped == 0
        # Idempotent: discovering an already-routed destination is a no-op.
        rreqs_before = origin.router.rreqs_sent
        origin.router.discover(target.ip)
        assert origin.router.rreqs_sent == rreqs_before

    def test_same_seed_runs_identical_different_seeds_diverge(self):
        def signature(seed):
            sim, scenario = _chain_scenario(node_count=4, seed=seed, duration=10.0)
            sink = UdpSink(scenario.network.node(4))
            source = CbrSource(scenario.network.node(1),
                               scenario.network.node(4).ip,
                               interval=0.15, payload_bytes=120)
            source.start(1.0)
            sim.run(until=10.0)
            return repr([
                (node.router.summary(),
                 [str(e) for e in node.router.table.entries()])
                for node in scenario.network.nodes
            ]) + f"|{sink.packets_received}|{sim.events_processed}"

        assert signature(1) == signature(1)
        assert signature(1) != signature(2)


class TestUnreachableDestination:
    def test_exhausted_ring_search_raises_the_same_routing_error(self):
        # Two nodes far beyond decodability: the expanding-ring search must
        # exhaust and the destination must surface exactly like a missing
        # static route — a RoutingError from next_hop(), a drop from send().
        config = AodvConfig(hello=HelloConfig(hello_interval=0.4),
                            ring_start_ttl=1, ring_ttl_increment=2,
                            ring_max_ttl=3, rreq_retries=1,
                            ring_timeout_per_ttl=0.1)
        sim = Simulator(seed=1)
        scenario = MobileScenario(sim, policy=broadcast_aggregation(),
                                  stop_time=8.0, routing="aodv",
                                  routing_config=config)
        scenario.add_node((0.0, 0.0))
        scenario.add_node((200.0, 0.0))
        _send_probe(scenario, 1, 2, at=1.0)
        sim.run(until=8.0)
        origin = scenario.network.node(1)
        router = origin.router
        assert router.discoveries_started == 1
        assert router.discoveries_failed == 1
        assert router.discoveries_completed == 0
        assert router.buffered_packets_dropped == 1
        # ring 1, 3, then rreq_retries=1 extra attempts at the max TTL.
        assert router.rreqs_sent >= 3
        unreachable = scenario.network.node(2).ip
        with pytest.raises(RoutingError) as aodv_error:
            origin.routing_table.next_hop(unreachable)
        with pytest.raises(RoutingError) as static_error:
            RoutingTable().next_hop(unreachable)
        assert type(aodv_error.value) is type(static_error.value)

    def test_buffer_bound_drops_oldest(self):
        config = AodvConfig(hello=HelloConfig(hello_interval=0.4),
                            ring_start_ttl=1, ring_max_ttl=2,
                            rreq_retries=20, ring_timeout_per_ttl=5.0,
                            buffer_packets=3)
        sim = Simulator(seed=1)
        scenario = MobileScenario(sim, policy=broadcast_aggregation(),
                                  stop_time=6.0, routing="aodv",
                                  routing_config=config)
        scenario.add_node((0.0, 0.0))
        scenario.add_node((200.0, 0.0))
        source = CbrSource(scenario.network.node(1), scenario.network.node(2).ip,
                           interval=0.2, payload_bytes=64)
        source.start(1.0)
        sim.run(until=4.0)
        router = scenario.network.node(1).router
        assert router.buffered_packets_dropped > 0
        assert len(router._pending[scenario.network.node(2).ip].buffered) == 3


class TestLinkBreakRerr:
    def test_rerr_invalidates_stale_routes_upstream(self):
        sim, scenario = _chain_scenario(node_count=3, duration=60.0)
        network = scenario.network
        sink = UdpSink(network.node(3))
        source = CbrSource(network.node(1), network.node(3).ip,
                           interval=0.2, payload_bytes=120)
        source.start(1.0)
        sim.run(until=6.0)
        first, relay, last = (network.node(i) for i in (1, 2, 3))
        assert first.routing_table.has_route(last.ip)
        broken_entry = first.router.table.entry_for(last.ip)
        # Carry the destination out of range; the relay's HELLO hold expires,
        # it invalidates its route to node 3 and broadcasts a RERR, and the
        # source — which was routing through the relay — invalidates too.
        last.position = (500.0, 0.0)
        sim.run(until=6.0 + 4 * FAST_AODV.hello.hold_time)
        assert relay.router.rerrs_sent >= 1
        assert first.router.rerrs_received >= 1
        assert first.router.route_breaks >= 1
        stale = first.router.table.entry_for(last.ip)
        assert stale is not None and not stale.valid
        assert stale.metric == INFINITE_METRIC
        assert stale.sequence > broken_entry.sequence
        assert not first.routing_table.has_route(last.ip)

    def test_route_rediscovered_after_break_heals(self):
        sim, scenario = _chain_scenario(node_count=3, duration=60.0)
        network = scenario.network
        sink = UdpSink(network.node(3))
        source = CbrSource(network.node(1), network.node(3).ip,
                           interval=0.2, payload_bytes=120)
        source.start(1.0)
        sim.run(until=6.0)
        received_before = sink.packets_received
        origin_position = network.node(3).position
        network.node(3).position = (500.0, 0.0)
        sim.run(until=6.0 + 4 * FAST_AODV.hello.hold_time)
        assert not network.node(1).routing_table.has_route(network.node(3).ip)
        network.node(3).position = origin_position
        sim.run(until=sim.now + 10.0)
        # Traffic is still flowing, so the next datagram re-discovers.
        assert network.node(1).routing_table.has_route(network.node(3).ip)
        assert sink.packets_received > received_before
        assert network.node(1).router.discoveries_completed >= 2


class TestActiveRouteLifetime:
    def _pair(self, lifetime, duration=30.0, seed=1):
        config = AodvConfig(hello=HelloConfig(hello_interval=0.4),
                            active_route_lifetime=lifetime)
        sim = Simulator(seed=seed)
        scenario = MobileScenario(sim, policy=broadcast_aggregation(),
                                  stop_time=duration, routing="aodv",
                                  routing_config=config)
        scenario.add_node((0.0, 0.0))
        scenario.add_node((6.0, 0.0))
        return sim, scenario

    def test_idle_route_expires(self):
        sim, scenario = self._pair(lifetime=1.0)
        _send_probe(scenario, 1, 2, at=1.0)
        sim.run(until=8.0)
        router = scenario.network.node(1).router
        assert router.route_expirations >= 1
        entry = router.table.entry_for(scenario.network.node(2).ip)
        assert entry is not None and not entry.valid

    def test_forwarded_data_refreshes_the_route(self):
        sim, scenario = self._pair(lifetime=1.0)
        source = CbrSource(scenario.network.node(1), scenario.network.node(2).ip,
                           interval=0.3, payload_bytes=64)
        source.start(1.0)
        sim.run(until=8.0)
        router = scenario.network.node(1).router
        # Data every 0.3 s against a 1.0 s lifetime: never expires.
        entry = router.table.entry_for(scenario.network.node(2).ip)
        assert entry is not None and entry.valid
        assert router.discoveries_started == 1

    def test_pending_lifetimes_survive_a_stop_start_cycle(self):
        # Regression: stop() cancels the expiry timer but keeps the recorded
        # deadlines; start() must re-arm, or a route due to expire would stay
        # valid forever after a restart.
        sim, scenario = self._pair(lifetime=1.0)
        _send_probe(scenario, 1, 2, at=1.0)
        sim.run(until=1.5)
        router = scenario.network.node(1).router
        assert router.table.entry_for(scenario.network.node(2).ip).valid
        router.stop()
        router.start(stop_time=30.0)
        sim.run(until=8.0)
        assert router.route_expirations >= 1
        assert not router.table.entry_for(scenario.network.node(2).ip).valid

    def test_seen_request_ids_are_pruned_after_the_discovery_window(self):
        config = AodvConfig(hello=HelloConfig(hello_interval=0.4),
                            active_route_lifetime=1.0,
                            path_discovery_time=1.0)
        sim = Simulator(seed=1)
        scenario = MobileScenario(sim, policy=broadcast_aggregation(),
                                  stop_time=12.0, routing="aodv",
                                  routing_config=config)
        scenario.add_node((0.0, 0.0))
        scenario.add_node((6.0, 0.0))
        source = CbrSource(scenario.network.node(1), scenario.network.node(2).ip,
                           interval=2.5, payload_bytes=64)
        source.start(1.0)
        sim.run(until=12.0)
        router = scenario.network.node(1).router
        # Every sparse packet rediscovered, but only ids inside the
        # 1 s discovery window survive the prune.
        assert router.discoveries_started >= 3
        assert len(router._seen_requests) <= 2

    def test_sparse_traffic_rediscovers_every_packet(self):
        sim, scenario = self._pair(lifetime=1.0)
        source = CbrSource(scenario.network.node(1), scenario.network.node(2).ip,
                           interval=2.5, payload_bytes=64)
        source.start(1.0)
        sim.run(until=11.0)
        router = scenario.network.node(1).router
        # Packet spacing (2.5 s) exceeds the lifetime (1 s): each datagram
        # finds its cached route expired and pays a fresh discovery.
        assert router.discoveries_started >= 3
        assert router.route_expirations >= 3


class TestControlPlaneAccounting:
    def test_aodv_is_a_routing_control_protocol(self):
        assert "aodv" in ROUTING_CONTROL_PROTOCOLS

    def test_control_bytes_counted_in_mac_stats(self):
        sim, scenario = _chain_scenario(node_count=3)
        _send_probe(scenario, 1, 3, at=1.0)
        sim.run(until=8.0)
        stats = scenario.network.node(2).mac_stats
        assert stats.routing_subframes_sent > 0
        assert 0.0 < stats.routing_overhead_fraction <= 1.0
        assert stats.routing_bytes_sent <= stats.payload_bytes_sent

    def test_summary_is_flat(self):
        sim, scenario = _chain_scenario(node_count=3)
        _send_probe(scenario, 1, 3, at=1.0)
        sim.run(until=8.0)
        summary = scenario.network.node(1).router.summary()
        assert summary["rreqs_sent"] >= 1
        assert summary["discoveries_completed"] == 1
        assert summary["neighbors"] == 1
        assert summary["hellos_sent"] > 0

    def test_static_route_installers_are_rejected_under_aodv(self):
        sim, scenario = _chain_scenario()
        with pytest.raises(ConfigurationError):
            scenario.connect_chain(1, 2, 3)
        with pytest.raises(ConfigurationError):
            scenario.connect_pair(1, 2)
