"""Unit tests for static routing, the forwarding engine and flooding."""

from __future__ import annotations

import pytest

from repro.core import broadcast_aggregation
from repro.errors import RoutingError
from repro.net.address import IpAddress
from repro.net.flooding import FloodingSource
from repro.net.packet import Packet, TcpHeader
from repro.net.routing import BROADCAST_IP, NeighborTable, RoutingTable, StaticRoute
from repro.sim import Simulator
from repro.topology import build_linear_chain
from repro.errors import ConfigurationError
from repro.mac.addresses import BROADCAST_MAC, MacAddress


# ---------------------------------------------------------------------------
# RoutingTable / NeighborTable
# ---------------------------------------------------------------------------

def test_routing_table_lookup_and_default():
    table = RoutingTable()
    table.add_route("10.0.0.3", "10.0.0.2")
    assert table.next_hop("10.0.0.3") == IpAddress("10.0.0.2")
    assert table.has_route("10.0.0.3")
    with pytest.raises(RoutingError):
        table.next_hop("10.0.0.9")
    table.set_default("10.0.0.2")
    assert table.next_hop("10.0.0.9") == IpAddress("10.0.0.2")
    assert len(table) == 1


def test_static_route_repr():
    route = StaticRoute(IpAddress("10.0.0.3"), IpAddress("10.0.0.2"))
    assert "10.0.0.3" in str(route)


def test_neighbor_table_resolution():
    table = NeighborTable()
    table.add("10.0.0.2", MacAddress.node(2))
    assert table.resolve("10.0.0.2") == MacAddress.node(2)
    assert table.resolve(BROADCAST_IP) == BROADCAST_MAC
    with pytest.raises(RoutingError):
        table.resolve("10.0.0.99")


# ---------------------------------------------------------------------------
# ForwardingEngine (via a real 3-node chain)
# ---------------------------------------------------------------------------

def build_chain(sim):
    return build_linear_chain(sim, hops=2, policy=broadcast_aggregation(),
                              unicast_rate_mbps=1.3)


def test_local_delivery_and_forwarding():
    sim = Simulator(seed=11)
    network = build_chain(sim)
    received = []
    network.node(3).network.register_handler(
        "tcp", lambda packet, src: received.append(packet))
    packet = Packet.tcp_segment(network.node(1).ip, network.node(3).ip,
                                TcpHeader(1, 2, flags_ack=True), payload_bytes=500)
    assert network.node(1).network.send(packet)
    sim.run(until=2.0)
    assert len(received) == 1
    assert network.node(2).network.stats.forwarded == 1
    assert network.node(3).network.stats.delivered_local == 1


def test_loopback_delivery_bypasses_mac():
    sim = Simulator(seed=12)
    network = build_chain(sim)
    node = network.node(1)
    received = []
    node.network.register_handler("tcp", lambda packet, src: received.append(packet))
    packet = Packet.tcp_segment(node.ip, node.ip, TcpHeader(1, 2, flags_ack=True))
    node.network.send(packet)
    assert len(received) == 1
    assert node.mac.queues.empty


def test_unhandled_protocol_counted():
    sim = Simulator(seed=13)
    network = build_chain(sim)
    node = network.node(1)
    from repro.net.packet import IpHeader
    # A protocol nobody registered a handler for ("raw").
    packet = Packet(ip=IpHeader(src=node.ip, dst=node.ip, protocol="raw"), payload_bytes=10)
    node.network.send(packet)
    assert node.network.stats.unhandled_protocol_drops == 1


def test_no_route_drop():
    sim = Simulator(seed=14)
    network = build_chain(sim)
    node = network.node(1)
    packet = Packet.tcp_segment(node.ip, IpAddress("10.0.9.9"), TcpHeader(1, 2, flags_ack=True))
    assert not node.network.send(packet)
    assert node.network.stats.no_route_drops == 1


def test_broadcast_packets_delivered_to_flood_handler_on_all_receivers():
    sim = Simulator(seed=15)
    network = build_chain(sim)
    received = {2: [], 3: []}
    for index in (2, 3):
        network.node(index).network.register_handler(
            "flood", lambda packet, src, _i=index: received[_i].append(packet))
    flood = Packet.broadcast_control(network.node(1).ip, payload_bytes=64)
    network.node(1).network.send(flood)
    sim.run(until=2.0)
    assert len(received[2]) == 1
    assert len(received[3]) == 1  # all nodes are in radio range of each other


# ---------------------------------------------------------------------------
# FloodingSource
# ---------------------------------------------------------------------------

def test_flooding_source_generates_packets_at_interval():
    sim = Simulator(seed=16)
    network = build_chain(sim)
    flooder = FloodingSource(sim, network.node(1).network, network.node(1).ip,
                             interval=0.5, payload_bytes=64, jitter_fraction=0.0)
    flooder.start(initial_delay=0.1)
    sim.run(until=3.0)
    assert flooder.packets_sent >= 5
    assert flooder.running
    flooder.stop()
    assert not flooder.running


def test_flooding_source_validation():
    sim = Simulator(seed=17)
    network = build_chain(sim)
    with pytest.raises(ConfigurationError):
        FloodingSource(sim, network.node(1).network, network.node(1).ip, interval=0.0)
    with pytest.raises(ConfigurationError):
        FloodingSource(sim, network.node(1).network, network.node(1).ip, interval=1.0,
                       payload_bytes=-1)
