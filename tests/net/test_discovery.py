"""HELLO-based neighbor discovery: beacons, liveness, expiry and jitter."""

from __future__ import annotations

import pytest

from repro.core.policies import broadcast_aggregation
from repro.errors import ConfigurationError
from repro.net.discovery import HelloConfig, NeighborDiscovery
from repro.sim.simulator import Simulator
from repro.topology.mobile import MobileScenario


def _two_node_scenario(seed: int = 1, spacing: float = 5.0, stop_time: float = 30.0,
                       hello_interval: float = 0.5):
    sim = Simulator(seed=seed)
    scenario = MobileScenario(sim, policy=broadcast_aggregation(),
                              stop_time=stop_time)
    a = scenario.add_node((0.0, 0.0))
    b = scenario.add_node((spacing, 0.0))
    config = HelloConfig(hello_interval=hello_interval)
    da = NeighborDiscovery(sim, a.network, config=config, name="a")
    db = NeighborDiscovery(sim, b.network, config=config, name="b")
    return sim, scenario, da, db


class TestHelloConfig:
    def test_hold_time_is_intervals_times_interval(self):
        config = HelloConfig(hello_interval=0.4, hold_intervals=3.5)
        assert config.hold_time == pytest.approx(1.4)

    @pytest.mark.parametrize("kwargs", [
        {"hello_interval": 0.0},
        {"jitter_fraction": 1.0},
        {"jitter_fraction": -0.1},
        {"hold_intervals": 1.0},
        {"payload_bytes": -1},
    ])
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            HelloConfig(**kwargs)


class TestNeighborLiveness:
    def test_neighbors_discover_each_other(self):
        sim, _, da, db = _two_node_scenario()
        da.start()
        db.start()
        sim.run(until=3.0)
        assert da.is_neighbor(db.address)
        assert db.is_neighbor(da.address)
        assert da.neighbor_up_events == 1
        assert da.hellos_sent > 0
        assert da.hellos_received > 0

    def test_out_of_range_nodes_never_become_neighbors(self):
        # 20 m is far beyond the ~12.5 m decodability limit.
        sim, _, da, db = _two_node_scenario(spacing=20.0)
        da.start()
        db.start()
        sim.run(until=3.0)
        assert len(da) == 0
        assert len(db) == 0

    def test_silent_neighbor_expires_after_hold_time(self):
        sim, _, da, db = _two_node_scenario(hello_interval=0.5)
        da.start()
        db.start()
        sim.run(until=2.0)
        assert da.is_neighbor(db.address)
        down_events = []
        da.on_neighbor_down(down_events.append)
        db.stop()  # b falls silent
        sim.run(until=2.0 + 3 * da.config.hold_time)
        assert not da.is_neighbor(db.address)
        assert down_events == [db.address]
        assert da.neighbor_down_events == 1

    def test_heard_refreshes_liveness_without_a_beacon(self):
        sim, _, da, db = _two_node_scenario(hello_interval=0.5)
        da.start()
        db.start()
        sim.run(until=2.0)
        db.stop()
        # Keep refreshing a's record of b by hand (as the DSDV router does
        # when updates arrive): b must never expire.
        for _ in range(10):
            sim.run(until=sim.now + da.config.hold_time / 2.0)
            da.heard(db.address)
        assert da.is_neighbor(db.address)

    def test_own_address_is_never_a_neighbor(self):
        sim, _, da, _ = _two_node_scenario()
        da.heard(da.address)
        assert len(da) == 0

    def test_stop_makes_liveness_processing_inert(self):
        # A packet still in flight when the protocol stops must not re-arm
        # the expiry timer: no link-down events (or pending events at all)
        # may surface after stop().
        sim, _, da, db = _two_node_scenario(hello_interval=0.5)
        da.start()
        db.start()
        sim.run(until=2.0)
        da.stop()
        db.stop()
        da.heard(db.address)  # late arrival after the stop
        assert not da._expiry.running
        down_events = []
        da.on_neighbor_down(down_events.append)
        sim.run(until=2.0 + 5 * da.config.hold_time)
        assert down_events == []
        assert da.neighbor_down_events == 0


class TestBeaconBehaviour:
    def test_beacons_are_jittered_not_lockstep(self):
        sim, _, da, _ = _two_node_scenario()
        da.start()
        first_period = da._beacon.period
        sim.run(until=5.0)
        # The re-jittered period must actually move around the nominal value.
        assert da._beacon.period != first_period

    def test_stop_time_bounds_beaconing(self):
        sim, _, da, db = _two_node_scenario()
        da.start(stop_time=2.0)
        db.start(stop_time=2.0)
        sim.run(until=10.0)
        sent_at_stop = da.hellos_sent
        sim.run(until=20.0)
        assert da.hellos_sent == sent_at_stop
        assert not da.running

    def test_hellos_count_as_routing_overhead_in_mac_stats(self):
        sim, scenario, da, db = _two_node_scenario()
        da.start()
        db.start()
        sim.run(until=3.0)
        stats = scenario.network.node(1).mac_stats
        assert stats.routing_subframes_sent > 0
        assert stats.routing_bytes_sent > 0
        assert stats.routing_overhead_fraction == pytest.approx(1.0)  # only control ran

    def test_same_seed_same_beacon_schedule(self):
        def signature(seed):
            sim, _, da, db = _two_node_scenario(seed=seed)
            da.start()
            db.start()
            sim.run(until=4.0)
            return (da.hellos_sent, da.hellos_received,
                    db.hellos_sent, db.hellos_received, sim.events_processed)

        assert signature(1) == signature(1)
        assert signature(1) != signature(2)
