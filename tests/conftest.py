"""Shared pytest fixtures.

Adds ``src/`` to ``sys.path`` so the test suite runs even when the package has
not been installed (the repository also ships a ``.pth``-based dev install).
"""

from __future__ import annotations

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

# tests/ itself is importable too, so test modules in any subdirectory can
# share code via ``from helpers... import ...`` (see tests/helpers/).
_TESTS = os.path.dirname(os.path.abspath(__file__))
if _TESTS not in sys.path:
    sys.path.insert(0, _TESTS)

import pytest

from repro.sim import Simulator


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator with a fixed seed."""
    return Simulator(seed=42)


@pytest.fixture
def traced_sim() -> Simulator:
    """A simulator with tracing enabled (for tests that inspect trace records)."""
    return Simulator(seed=42, trace_enabled=True)
