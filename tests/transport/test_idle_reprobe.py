"""Bounded idle re-probe: the persist-timer-style RTO mitigation.

``mob02`` showed that long path outages phase-lock with TCP's exponentially
backed-off RTO (capped at 60 s): end-to-end retries keep landing while the
path is down, and after the path returns the sender may sit out most of a
full backoff period before retrying.  With ``idle_reprobe=True`` the
retransmission interval is capped at ``reprobe_interval`` once
``reprobe_after_timeouts`` consecutive RTOs have fired, bounding recovery
latency after an outage.  The flag defaults to **off** so every paper
experiment is unchanged.
"""

from __future__ import annotations

import pytest

from repro.net.packet import Packet
from repro.sim import Simulator
from tests.transport.test_tcp_connection import (
    CLIENT_IP,
    SERVER_IP,
    LoopbackNetwork,
    TcpConnection,
    handshake,
)


def _pair(sim, delay=0.01, mss=1000, **client_options):
    network = LoopbackNetwork(sim, delay=delay)
    client = TcpConnection(sim, network, CLIENT_IP, 40000, SERVER_IP, 5001,
                           mss=mss, **client_options)
    server = TcpConnection(sim, network, SERVER_IP, 5001, CLIENT_IP, 40000, mss=mss)
    network.attach(CLIENT_IP, client)
    network.attach(SERVER_IP, server)
    return network, client, server


def _outage(network, start: float, end: float):
    """Drop every data packet whose send time falls inside [start, end)."""
    sim = network.sim

    def drop(packet: Packet) -> bool:
        return start <= sim.now < end

    network.drop_filter = drop


class TestIdleReprobe:
    def test_flag_defaults_off(self):
        sim = Simulator(seed=1)
        _, client, _ = _pair(sim)
        assert client.idle_reprobe is False
        assert client.reprobes_sent == 0

    def test_backoff_unbounded_without_the_flag(self):
        # A 30 s outage: the default sender's RTO doubles past the outage
        # end, so recovery waits for the backed-off timer long after the
        # path is back.
        sim = Simulator(seed=1)
        network, client, server = _pair(sim)
        handshake(sim, network, client, server)
        _outage(network, start=1.0, end=31.0)
        sim.schedule(0.5, client.send, 5000)
        sim.run(until=120.0)
        assert client.all_data_acknowledged  # it does recover eventually...
        recovery_default = max(p.created_at for p in network.sent_packets
                               if p.payload_bytes > 0)
        assert recovery_default > 31.0
        assert client.reprobes_sent == 0

        # Same outage with the mitigation: the first successful retransmission
        # lands within one reprobe interval of the outage ending.
        sim2 = Simulator(seed=1)
        network2, client2, server2 = _pair(sim2, idle_reprobe=True,
                                           reprobe_interval=2.0)
        handshake(sim2, network2, client2, server2)
        _outage(network2, start=1.0, end=31.0)
        sim2.schedule(0.5, client2.send, 5000)
        sim2.run(until=120.0)
        assert client2.all_data_acknowledged
        assert client2.reprobes_sent > 0
        recovery_probed = min(p.created_at for p in network2.sent_packets
                              if p.payload_bytes > 0 and p.created_at >= 31.0)
        assert recovery_probed <= 31.0 + 2.0 + 1e-9
        assert recovery_probed < recovery_default

    def test_probe_cadence_is_bounded_during_a_long_outage(self):
        sim = Simulator(seed=1)
        network, client, server = _pair(sim, idle_reprobe=True,
                                        reprobe_after_timeouts=2,
                                        reprobe_interval=3.0)
        handshake(sim, network, client, server)
        _outage(network, start=1.0, end=200.0)  # never ends within the run
        sim.schedule(0.5, client.send, 2000)
        sim.run(until=60.0)
        retransmissions = [p.created_at for p in network.sent_packets
                           if p.payload_bytes > 0 and p.created_at > 20.0]
        assert retransmissions, "probes must keep flowing during the outage"
        gaps = [b - a for a, b in zip(retransmissions, retransmissions[1:])]
        assert gaps and max(gaps) <= 3.0 + 1e-9

    def test_successful_ack_resets_the_consecutive_timeout_count(self):
        sim = Simulator(seed=1)
        network, client, server = _pair(sim, idle_reprobe=True,
                                        reprobe_after_timeouts=3)
        handshake(sim, network, client, server)
        _outage(network, start=1.0, end=8.0)
        sim.schedule(0.5, client.send, 3000)
        sim.run(until=30.0)
        assert client.all_data_acknowledged
        assert client._consecutive_timeouts == 0

    def test_reprobe_never_shortens_a_small_rto(self):
        # With a huge reprobe_interval the mitigation can never fire: the
        # capped delay equals the plain backoff, byte for byte.
        def transcript(**options):
            sim = Simulator(seed=1)
            network, client, server = _pair(sim, **options)
            handshake(sim, network, client, server)
            _outage(network, start=1.0, end=5.0)
            sim.schedule(0.5, client.send, 4000)
            sim.run(until=40.0)
            return [(round(p.created_at, 9), p.payload_bytes)
                    for p in network.sent_packets]

        assert transcript() == transcript(idle_reprobe=True,
                                          reprobe_interval=1e9)
