"""Unit tests for the UDP layer over a real 2-hop chain."""

from __future__ import annotations

import pytest

from repro.core import broadcast_aggregation
from repro.errors import TransportError
from repro.sim import Simulator
from repro.topology import build_linear_chain


def build(sim):
    return build_linear_chain(sim, hops=2, policy=broadcast_aggregation(),
                              unicast_rate_mbps=1.3)


def test_datagram_delivery_end_to_end():
    sim = Simulator(seed=21)
    network = build(sim)
    receiver = network.node(3).udp.bind(9000)
    received = []
    receiver.on_receive(lambda packet, src: received.append((packet.payload_bytes, str(src))))
    sender = network.node(1).udp.bind(9000)
    sender.send_to(network.node(3).ip, 9000, 800)
    sim.run(until=2.0)
    assert received == [(800, "10.0.0.1")]
    assert receiver.datagrams_received == 1
    assert receiver.bytes_received == 800
    assert sender.datagrams_sent == 1


def test_unbound_port_drops():
    sim = Simulator(seed=22)
    network = build(sim)
    sender = network.node(1).udp.bind(9000)
    sender.send_to(network.node(3).ip, 12345, 100)
    sim.run(until=2.0)
    assert network.node(3).udp.no_port_drops == 1


def test_double_bind_rejected():
    sim = Simulator(seed=23)
    network = build(sim)
    network.node(1).udp.bind(9000)
    with pytest.raises(TransportError):
        network.node(1).udp.bind(9000)


def test_unbind_allows_rebinding():
    sim = Simulator(seed=24)
    network = build(sim)
    socket = network.node(1).udp.bind(9000)
    socket.close()
    network.node(1).udp.bind(9000)  # must not raise


def test_multiple_sockets_demultiplexed():
    sim = Simulator(seed=25)
    network = build(sim)
    received = {9000: 0, 9001: 0}
    for port in received:
        sock = network.node(3).udp.bind(port)
        sock.on_receive(lambda packet, src, _p=port: received.__setitem__(_p, received[_p] + 1))
    sender = network.node(1).udp.bind(7000)
    sender.send_to(network.node(3).ip, 9000, 100)
    sender.send_to(network.node(3).ip, 9001, 100)
    sender.send_to(network.node(3).ip, 9001, 100)
    sim.run(until=2.0)
    assert received == {9000: 1, 9001: 2}
