"""Unit tests for NewReno congestion control and RTT/RTO estimation."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.transport.tcp.congestion import NewRenoCongestionControl
from repro.transport.tcp.rtt import RttEstimator

MSS = 1357


# ---------------------------------------------------------------------------
# Congestion control
# ---------------------------------------------------------------------------

def test_initial_window_and_slow_start_growth():
    cc = NewRenoCongestionControl(mss=MSS, initial_window_segments=2)
    assert cc.cwnd == 2 * MSS
    assert cc.in_slow_start
    cc.on_new_ack(MSS)
    assert cc.cwnd == 3 * MSS  # exponential growth: +1 MSS per ACKed MSS


def test_congestion_avoidance_linear_growth():
    cc = NewRenoCongestionControl(mss=MSS, initial_window_segments=4, initial_ssthresh=4 * MSS)
    assert not cc.in_slow_start
    start = cc.cwnd
    # A full window of ACKs grows cwnd by roughly one MSS.
    acked = 0
    while acked < start:
        cc.on_new_ack(MSS)
        acked += MSS
    assert cc.cwnd >= start + MSS
    assert cc.cwnd < start + 3 * MSS


def test_fast_recovery_halves_window():
    cc = NewRenoCongestionControl(mss=MSS, initial_window_segments=20,
                                  initial_ssthresh=100 * MSS)
    flight = 20 * MSS
    cc.on_enter_fast_recovery(flight)
    assert cc.in_fast_recovery
    assert cc.ssthresh == flight // 2
    assert cc.cwnd == cc.ssthresh + 3 * MSS
    cc.on_dup_ack_in_recovery()
    assert cc.cwnd == cc.ssthresh + 4 * MSS
    cc.on_exit_fast_recovery()
    assert not cc.in_fast_recovery
    assert cc.cwnd == cc.ssthresh


def test_partial_ack_deflates_window():
    cc = NewRenoCongestionControl(mss=MSS, initial_window_segments=20)
    cc.on_enter_fast_recovery(20 * MSS)
    before = cc.cwnd
    cc.on_partial_ack(2 * MSS)
    assert cc.cwnd <= before
    assert cc.cwnd >= cc.ssthresh


def test_timeout_collapses_to_one_segment():
    cc = NewRenoCongestionControl(mss=MSS, initial_window_segments=20)
    cc.on_timeout(20 * MSS)
    assert cc.cwnd == MSS
    assert cc.ssthresh == 10 * MSS
    assert cc.timeouts == 1
    assert not cc.in_fast_recovery


def test_ssthresh_floor_is_two_segments():
    cc = NewRenoCongestionControl(mss=MSS)
    cc.on_timeout(MSS)
    assert cc.ssthresh == 2 * MSS


def test_window_bounded_by_receiver():
    cc = NewRenoCongestionControl(mss=MSS, initial_window_segments=50)
    assert cc.window(receiver_window=10 * MSS) == 10 * MSS


def test_invalid_mss_rejected():
    with pytest.raises(ConfigurationError):
        NewRenoCongestionControl(mss=0)


# ---------------------------------------------------------------------------
# RTT / RTO
# ---------------------------------------------------------------------------

def test_first_measurement_initialises_srtt():
    rtt = RttEstimator()
    rtt.on_measurement(0.1)
    assert rtt.srtt == pytest.approx(0.1)
    assert rtt.rttvar == pytest.approx(0.05)
    assert rtt.rto == pytest.approx(max(0.2, 0.1 + 4 * 0.05))


def test_smoothing_converges_towards_constant_rtt():
    rtt = RttEstimator()
    for _ in range(50):
        rtt.on_measurement(0.08)
    assert rtt.srtt == pytest.approx(0.08, rel=0.05)
    assert rtt.rto >= rtt.min_rto


def test_rto_never_below_minimum():
    rtt = RttEstimator(min_rto=0.2)
    for _ in range(20):
        rtt.on_measurement(0.001)
    assert rtt.rto == pytest.approx(0.2)


def test_timeout_backoff_doubles_and_resets():
    rtt = RttEstimator()
    rtt.on_measurement(0.5)
    base = rtt.rto
    rtt.on_timeout()
    assert rtt.rto == pytest.approx(min(2 * base, rtt.max_rto))
    rtt.on_timeout()
    assert rtt.rto >= 2 * base or rtt.rto == rtt.max_rto
    rtt.reset_backoff()
    assert rtt.rto == pytest.approx(base)


def test_negative_samples_ignored():
    rtt = RttEstimator()
    rtt.on_measurement(-1.0)
    assert rtt.samples == 0


def test_invalid_bounds_rejected():
    with pytest.raises(ConfigurationError):
        RttEstimator(min_rto=0.0)
    with pytest.raises(ConfigurationError):
        RttEstimator(min_rto=2.0, max_rto=1.0)
