"""TCP connection tests over an ideal in-memory network.

These tests exercise the TCP state machine in isolation from the wireless
stack: a :class:`LoopbackNetwork` delivers segments between two connections
with a configurable delay and an optional per-packet drop pattern, so
handshake, sliding window, fast retransmit and RTO behaviour can be verified
deterministically.
"""

from __future__ import annotations

from typing import Callable, Optional

import pytest

from repro.net.address import IpAddress
from repro.net.packet import Packet
from repro.sim import Simulator
from repro.transport.tcp.connection import TcpConnection, TcpState

CLIENT_IP, SERVER_IP = IpAddress("10.0.0.1"), IpAddress("10.0.0.2")


class LoopbackNetwork:
    """Delivers packets directly to the peer connection after a fixed delay."""

    def __init__(self, sim: Simulator, delay: float = 0.01):
        self.sim = sim
        self.delay = delay
        self.peers = {}
        self.sent_packets = []
        self.drop_filter: Optional[Callable[[Packet], bool]] = None

    def attach(self, address: IpAddress, connection: TcpConnection) -> None:
        self.peers[IpAddress(address)] = connection

    def send(self, packet: Packet) -> bool:
        self.sent_packets.append(packet)
        if self.drop_filter is not None and self.drop_filter(packet):
            return True
        peer = self.peers.get(packet.ip.dst)
        if peer is None:
            return False
        self.sim.schedule(self.delay, peer.on_segment, packet)
        return True


def make_pair(sim, delay=0.01, mss=1000):
    network = LoopbackNetwork(sim, delay=delay)
    client = TcpConnection(sim, network, CLIENT_IP, 40000, SERVER_IP, 5001, mss=mss)
    server = TcpConnection(sim, network, SERVER_IP, 5001, CLIENT_IP, 40000, mss=mss)
    network.attach(CLIENT_IP, client)
    network.attach(SERVER_IP, server)
    return network, client, server


def handshake(sim, network, client, server):
    # Wire the passive side: when the SYN arrives the server accepts it.
    original = server.on_segment

    def server_receive(packet):
        if server.state is TcpState.CLOSED and packet.tcp.flags_syn:
            server.accept_syn(packet.tcp.seq)
            return
        original(packet)

    network.peers[SERVER_IP] = type("P", (), {"on_segment": staticmethod(server_receive)})()
    client.open_active()
    sim.run(until=1.0)
    network.peers[SERVER_IP] = server  # restore direct delivery
    # Replay: further segments go straight to server.on_segment via the dict.


def establish(sim, delay=0.01, mss=1000):
    network, client, server = make_pair(sim, delay=delay, mss=mss)

    def deliver_to_server(packet):
        if server.state is TcpState.CLOSED and packet.tcp.flags_syn:
            server.accept_syn(packet.tcp.seq)
        else:
            server.on_segment(packet)

    network.peers[SERVER_IP] = type("Peer", (), {"on_segment": staticmethod(deliver_to_server)})()
    client.open_active()
    sim.run(until=1.0)
    return network, client, server


def test_three_way_handshake():
    sim = Simulator(seed=1)
    network, client, server = establish(sim)
    assert client.state is TcpState.ESTABLISHED
    assert server.state is TcpState.ESTABLISHED
    assert client.snd_una == 1 and server.rcv_nxt == 1


def test_data_transfer_and_cumulative_acks():
    sim = Simulator(seed=2)
    network, client, server = establish(sim)
    received = []
    server.on_data_received = received.append
    client.send(5000)
    sim.run(until=5.0)
    assert sum(received) == 5000
    assert client.all_data_acknowledged
    assert server.pure_acks_sent >= 5  # one ACK per segment
    assert client.snd_una == client.snd_nxt


def test_every_data_segment_triggers_a_pure_ack():
    sim = Simulator(seed=3)
    network, client, server = establish(sim)
    client.send(3000)
    sim.run(until=5.0)
    data_segments = [p for p in network.sent_packets if p.payload_bytes > 0]
    pure_acks = [p for p in network.sent_packets if p.is_pure_tcp_ack]
    assert len(pure_acks) >= len(data_segments)


def test_fin_teardown():
    sim = Simulator(seed=4)
    network, client, server = establish(sim)
    closed = []
    server.on_closed = lambda: closed.append("server")
    client.send(2000)
    client.close()
    sim.run(until=5.0)
    assert client.state in (TcpState.FIN_WAIT_2, TcpState.CLOSED)
    assert server.state is TcpState.CLOSE_WAIT
    assert closed == ["server"]
    assert server.peer_fin_received


def test_lost_data_segment_recovered_by_fast_retransmit():
    sim = Simulator(seed=5)
    network, client, server = establish(sim)
    drop_state = {"dropped": False}

    def drop_second_data(packet):
        if packet.payload_bytes > 0 and packet.tcp.seq == 1001 and not drop_state["dropped"]:
            drop_state["dropped"] = True
            return True
        return False

    network.drop_filter = drop_second_data
    client.send(10_000)
    sim.run(until=10.0)
    assert drop_state["dropped"]
    assert server.bytes_received == 10_000
    assert client.retransmitted_segments >= 1
    assert client.all_data_acknowledged


def test_lost_ack_is_harmless_because_acks_are_cumulative():
    """The property Section 3.3 relies on: dropping pure ACKs does not stall TCP."""
    sim = Simulator(seed=6)
    network, client, server = establish(sim)
    counter = {"n": 0}

    def drop_every_other_ack(packet):
        if packet.is_pure_tcp_ack:
            counter["n"] += 1
            return counter["n"] % 2 == 0
        return False

    network.drop_filter = drop_every_other_ack
    client.send(20_000)
    sim.run(until=20.0)
    assert server.bytes_received == 20_000
    assert client.all_data_acknowledged
    # Cumulative ACKs absorb the losses mid-stream; at most the final ACK's
    # loss can force a single retransmission timeout.
    assert client.timeouts <= 1
    assert client.retransmitted_segments <= 2


def test_retransmission_timeout_recovers_from_total_blackout():
    sim = Simulator(seed=7)
    network, client, server = establish(sim)
    window = {"blackout": True}
    network.drop_filter = lambda packet: window["blackout"] and packet.payload_bytes > 0
    client.send(3000)
    sim.schedule(2.0, lambda: window.update(blackout=False))
    sim.run(until=30.0)
    assert server.bytes_received == 3000
    assert client.timeouts >= 1
    assert client.cc.timeouts >= 1


def test_window_limits_outstanding_data():
    sim = Simulator(seed=8)
    network, client, server = establish(sim, delay=0.2, mss=1000)
    client.send(100_000)
    # Immediately after sending, the flight size cannot exceed the window.
    assert client.flight_size <= client.cc.window(client.peer_window)
    sim.run(until=60.0)
    assert server.bytes_received == 100_000


def test_send_in_invalid_state_rejected():
    sim = Simulator(seed=9)
    network, client, server = make_pair(sim)
    from repro.errors import TcpStateError
    with pytest.raises(TcpStateError):
        client.send(100)  # CLOSED
    client.open_active()
    client.close()
    with pytest.raises(TcpStateError):
        client.send(100)  # after close()
