"""Unit tests for receive-side deaggregation and the block-ACK extension."""

from __future__ import annotations

import pytest

from repro.core.block_ack import BlockAck, BlockAckScoreboard
from repro.core.deaggregation import DuplicateDetector, process_received_aggregate
from repro.mac.addresses import BROADCAST_MAC, MacAddress
from repro.mac.frames import subframe_for_packet
from repro.net.address import IpAddress
from repro.net.packet import Packet, TcpHeader
from repro.phy.frame import PhyFrame, ReceptionResult
from repro.phy.rates import hydra_rate_table

RATES = hydra_rate_table()
ME = MacAddress.node(2)
SENDER = MacAddress.node(1)


def subframe(dst, payload=1357, broadcast_portion=False):
    header = TcpHeader(src_port=1, dst_port=2, flags_ack=True)
    packet = Packet.tcp_segment(IpAddress("10.0.0.1"), IpAddress("10.0.0.9"), header,
                                payload_bytes=payload)
    return subframe_for_packet(packet, SENDER, dst, broadcast_portion=broadcast_portion)


def reception(broadcast=(), unicast=(), broadcast_ok=None, unicast_ok=None):
    frame = PhyFrame.data(list(broadcast), list(unicast), unicast_rate=RATES.base_rate)
    return ReceptionResult(
        frame=frame, snr_db=25.0,
        broadcast_ok=list(broadcast_ok if broadcast_ok is not None else [True] * len(broadcast)),
        unicast_ok=list(unicast_ok if unicast_ok is not None else [True] * len(unicast)),
    )


# ---------------------------------------------------------------------------
# Broadcast portion rules (Sections 3.3 / 4.2.2)
# ---------------------------------------------------------------------------

def test_broadcast_subframes_delivered_individually():
    result = reception(broadcast=[subframe(BROADCAST_MAC, 64), subframe(BROADCAST_MAC, 64)],
                       broadcast_ok=[True, False])
    outcome = process_received_aggregate(result, ME)
    assert len(outcome.broadcast_deliveries) == 1
    assert not outcome.send_ack


def test_overheard_classified_ack_is_dropped_at_mac():
    """A TCP ACK in the broadcast portion addressed to another node must not go up."""
    other = MacAddress.node(7)
    result = reception(broadcast=[subframe(other, 0, broadcast_portion=True)])
    outcome = process_received_aggregate(result, ME)
    assert outcome.broadcast_deliveries == []
    assert outcome.overheard_dropped == 1


def test_classified_ack_addressed_to_me_is_delivered():
    result = reception(broadcast=[subframe(ME, 0, broadcast_portion=True)])
    outcome = process_received_aggregate(result, ME)
    assert len(outcome.broadcast_deliveries) == 1


# ---------------------------------------------------------------------------
# Unicast portion rules
# ---------------------------------------------------------------------------

def test_unicast_all_ok_generates_single_ack():
    result = reception(unicast=[subframe(ME), subframe(ME)])
    outcome = process_received_aggregate(result, ME)
    assert len(outcome.unicast_deliveries) == 2
    assert outcome.send_ack
    assert outcome.ack_destination == SENDER


def test_unicast_any_crc_failure_discards_everything_and_suppresses_ack():
    result = reception(unicast=[subframe(ME), subframe(ME)], unicast_ok=[True, False])
    outcome = process_received_aggregate(result, ME)
    assert outcome.unicast_deliveries == []
    assert not outcome.send_ack
    assert outcome.unicast_crc_passed and outcome.unicast_crc_failed


def test_unicast_for_other_destination_sets_nav_only():
    other = MacAddress.node(9)
    sf = subframe(other)
    sf.duration = 0.004
    result = reception(unicast=[sf])
    outcome = process_received_aggregate(result, ME)
    assert outcome.unicast_deliveries == []
    assert not outcome.send_ack
    assert outcome.nav_duration == pytest.approx(0.004)


def test_mixed_frame_broadcast_still_delivered_when_unicast_fails():
    """Broadcast subframes 'do not suffer' from being aggregated with unicast ones."""
    result = reception(broadcast=[subframe(BROADCAST_MAC, 64)],
                       unicast=[subframe(ME)], unicast_ok=[False])
    outcome = process_received_aggregate(result, ME)
    assert len(outcome.broadcast_deliveries) == 1
    assert outcome.unicast_deliveries == []


def test_duplicate_detection_filters_retransmissions():
    detector = DuplicateDetector()
    sf = subframe(ME)
    first = process_received_aggregate(reception(unicast=[sf]), ME, duplicates=detector)
    second = process_received_aggregate(reception(unicast=[sf]), ME, duplicates=detector)
    assert len(first.unicast_deliveries) == 1
    assert second.unicast_deliveries == []
    assert second.send_ack  # the ACK is still sent so the sender stops retrying
    assert second.duplicates_filtered == 1


def test_duplicate_detector_cache_eviction():
    detector = DuplicateDetector(cache_size=2)
    assert not detector.is_duplicate(SENDER, 1)
    assert not detector.is_duplicate(SENDER, 2)
    assert not detector.is_duplicate(SENDER, 3)
    # Sequence 1 was evicted, so it is no longer considered a duplicate.
    assert not detector.is_duplicate(SENDER, 1)
    assert detector.is_duplicate(SENDER, 3)


# ---------------------------------------------------------------------------
# Block-ACK extension
# ---------------------------------------------------------------------------

def test_block_ack_mode_accepts_partial_unicast():
    good, bad = subframe(ME), subframe(ME)
    result = reception(unicast=[good, bad], unicast_ok=[True, False])
    outcome = process_received_aggregate(result, ME, block_ack_enabled=True)
    assert len(outcome.unicast_deliveries) == 1
    assert outcome.send_ack
    assert outcome.unicast_crc_passed == [good.sequence]
    assert outcome.unicast_crc_failed == [bad.sequence]


def test_block_ack_scoreboard_tracks_missing_subframes():
    scoreboard = BlockAckScoreboard()
    frames = [subframe(ME), subframe(ME), subframe(ME)]
    scoreboard.register(frames)
    block_ack = BlockAck.for_outcome(SENDER, [frames[0].sequence, frames[2].sequence])
    missing = scoreboard.apply(block_ack)
    assert missing == [frames[1]]
    assert not scoreboard.empty
    assert scoreboard.fail_all() == [frames[1]]


def test_block_ack_acknowledges():
    block_ack = BlockAck.for_outcome(SENDER, [5, 7])
    assert block_ack.acknowledges(5)
    assert not block_ack.acknowledges(6)
