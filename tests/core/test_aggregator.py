"""Unit tests for the transmit-side aggregator."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.aggregator import AggregateBuild, Aggregator
from repro.core.policies import (
    broadcast_aggregation,
    no_aggregation,
    unicast_aggregation,
)
from repro.errors import AggregationError
from repro.mac.addresses import BROADCAST_MAC, MacAddress
from repro.mac.frames import subframe_for_packet
from repro.mac.queues import TransmitQueues
from repro.net.address import IpAddress
from repro.net.packet import Packet, TcpHeader
from repro.phy.rates import hydra_rate_table
from repro.units import kilobytes

RATES = hydra_rate_table()


def data_subframe(dst_index=2, payload=1357):
    header = TcpHeader(src_port=1, dst_port=2, flags_ack=True)
    packet = Packet.tcp_segment(IpAddress("10.0.0.1"), IpAddress("10.0.0.9"), header,
                                payload_bytes=payload)
    return subframe_for_packet(packet, MacAddress.node(1), MacAddress.node(dst_index))


def ack_subframe(dst_index=2):
    header = TcpHeader(src_port=2, dst_port=1, flags_ack=True)
    packet = Packet.tcp_segment(IpAddress("10.0.0.9"), IpAddress("10.0.0.1"), header)
    return subframe_for_packet(packet, MacAddress.node(3), MacAddress.node(dst_index),
                               broadcast_portion=True)


def flood_subframe():
    packet = Packet.broadcast_control(IpAddress("10.0.0.1"), payload_bytes=64)
    return subframe_for_packet(packet, MacAddress.node(1), BROADCAST_MAC)


def queues_with(unicast=(), broadcast=()):
    queues = TransmitQueues()
    for sf in broadcast:
        queues.enqueue_broadcast(sf)
    for sf in unicast:
        queues.enqueue_unicast(sf)
    return queues


# ---------------------------------------------------------------------------
# Policy-driven composition
# ---------------------------------------------------------------------------

def test_na_builds_single_subframe_per_transmission():
    aggregator = Aggregator(no_aggregation())
    queues = queues_with(unicast=[data_subframe(), data_subframe()])
    build = aggregator.build(queues)
    assert build.subframe_count == 1
    assert queues.unicast_count == 1


def test_ua_gathers_same_destination_within_budget():
    aggregator = Aggregator(unicast_aggregation(max_aggregate_bytes=kilobytes(5)))
    queues = queues_with(unicast=[data_subframe(2), data_subframe(2), data_subframe(2),
                                  data_subframe(2)])
    build = aggregator.build(queues)
    # 3 x 1464 = 4392 <= 5120 but a 4th does not fit.
    assert len(build.unicast_subframes) == 3
    assert build.total_bytes <= kilobytes(5)
    assert queues.unicast_count == 1


def test_ua_only_aggregates_matching_destination():
    aggregator = Aggregator(unicast_aggregation())
    queues = queues_with(unicast=[data_subframe(2), data_subframe(3), data_subframe(2)])
    build = aggregator.build(queues)
    assert build.destination == MacAddress.node(2)
    assert len(build.unicast_subframes) == 2
    assert queues.head_unicast_destination() == MacAddress.node(3)


def test_ua_does_not_mix_broadcast_and_unicast():
    aggregator = Aggregator(unicast_aggregation())
    queues = queues_with(unicast=[data_subframe()], broadcast=[flood_subframe()])
    build = aggregator.build(queues)
    # The broadcast queue is drained first and travels alone under UA.
    assert build.broadcast_subframes and not build.unicast_subframes
    second = aggregator.build(queues)
    assert second.unicast_subframes and not second.broadcast_subframes


def test_ba_prepends_broadcast_portion_to_unicast_portion():
    aggregator = Aggregator(broadcast_aggregation())
    queues = queues_with(unicast=[data_subframe(2), data_subframe(2)],
                         broadcast=[ack_subframe(5), flood_subframe()])
    build = aggregator.build(queues)
    assert len(build.broadcast_subframes) == 2
    assert len(build.unicast_subframes) == 2
    assert build.destination == MacAddress.node(2)
    assert queues.empty


def test_ba_broadcast_only_frame_when_no_unicast_queued():
    aggregator = Aggregator(broadcast_aggregation())
    queues = queues_with(broadcast=[ack_subframe(5), ack_subframe(6)])
    build = aggregator.build(queues)
    assert build.broadcast_subframes and not build.has_unicast


def test_forward_aggregation_disabled_limits_to_one_each():
    aggregator = Aggregator(broadcast_aggregation().without_forward_aggregation())
    queues = queues_with(unicast=[data_subframe(2), data_subframe(2)],
                         broadcast=[ack_subframe(5), ack_subframe(5)])
    build = aggregator.build(queues)
    assert len(build.broadcast_subframes) == 1
    assert len(build.unicast_subframes) == 1


def test_budget_respected_but_first_subframe_always_fits():
    tiny_budget = Aggregator(unicast_aggregation(max_aggregate_bytes=1000))
    queues = queues_with(unicast=[data_subframe(2), data_subframe(2)])
    build = tiny_budget.build(queues)
    # 1464 > 1000 but a frame cannot be fragmented: exactly one is taken.
    assert len(build.unicast_subframes) == 1


def test_preserved_unicast_retransmission_keeps_portion_and_adds_broadcasts():
    aggregator = Aggregator(broadcast_aggregation())
    queues = queues_with(broadcast=[ack_subframe(5)])
    preserved = [data_subframe(2), data_subframe(2)]
    build = aggregator.build(queues, preserved_unicast=preserved)
    assert build.unicast_subframes == preserved
    assert len(build.broadcast_subframes) == 1


def test_empty_queues_give_empty_build():
    aggregator = Aggregator(broadcast_aggregation())
    build = aggregator.build(TransmitQueues())
    assert build.empty
    with pytest.raises(AggregationError):
        build.to_phy_frame(RATES.base_rate)


def test_to_phy_frame_sets_rates():
    aggregator = Aggregator(broadcast_aggregation())
    queues = queues_with(unicast=[data_subframe(2)], broadcast=[ack_subframe(5)])
    build = aggregator.build(queues)
    frame = build.to_phy_frame(RATES.by_mbps(2.6), RATES.by_mbps(0.65))
    assert frame.unicast_rate.data_rate_mbps == 2.6
    assert frame.broadcast_rate.data_rate_mbps == 0.65
    assert frame.total_bytes == build.total_bytes


def test_without_broadcast_portion_copy():
    build = AggregateBuild(broadcast_subframes=[ack_subframe(5)],
                           unicast_subframes=[data_subframe(2)],
                           destination=MacAddress.node(2))
    retry = build.without_broadcast_portion()
    assert retry.broadcast_subframes == []
    assert retry.unicast_subframes == build.unicast_subframes
    assert retry.destination == build.destination


@given(n_unicast=st.integers(min_value=0, max_value=12),
       n_broadcast=st.integers(min_value=0, max_value=12),
       budget_kb=st.integers(min_value=2, max_value=16))
def test_build_never_exceeds_budget_beyond_first_subframe(n_unicast, n_broadcast, budget_kb):
    """Invariant: an aggregate exceeds the byte budget only if it is a single subframe."""
    aggregator = Aggregator(broadcast_aggregation(max_aggregate_bytes=kilobytes(budget_kb)))
    queues = queues_with(unicast=[data_subframe(2) for _ in range(n_unicast)],
                         broadcast=[ack_subframe(5) for _ in range(n_broadcast)])
    build = aggregator.build(queues)
    if build.subframe_count > 1:
        assert build.total_bytes <= kilobytes(budget_kb)
