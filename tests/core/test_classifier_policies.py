"""Unit tests for the TCP ACK classifier and the aggregation policies."""

from __future__ import annotations

import pytest

from repro.core.classifier import TcpAckClassifier
from repro.core.policies import (
    broadcast_aggregation,
    delayed_broadcast_aggregation,
    no_aggregation,
    unicast_aggregation,
)
from repro.errors import ConfigurationError
from repro.net.address import IpAddress
from repro.net.packet import Packet, TcpHeader
from repro.units import kilobytes

SRC, DST = IpAddress("10.0.0.1"), IpAddress("10.0.0.3")


def tcp(payload=0, ack=True, syn=False, fin=False, rst=False):
    header = TcpHeader(src_port=1, dst_port=2, flags_ack=ack, flags_syn=syn,
                       flags_fin=fin, flags_rst=rst)
    return Packet.tcp_segment(SRC, DST, header, payload_bytes=payload)


# ---------------------------------------------------------------------------
# Classifier (Section 4.2.4)
# ---------------------------------------------------------------------------

def test_pure_ack_is_classified():
    classifier = TcpAckClassifier(enabled=True)
    assert classifier.is_pure_tcp_ack(tcp(payload=0, ack=True))
    assert classifier.belongs_in_broadcast_queue(tcp(), link_broadcast=False)
    assert classifier.classified_ack_count == 1


def test_data_segments_are_not_classified():
    classifier = TcpAckClassifier(enabled=True)
    assert not classifier.is_pure_tcp_ack(tcp(payload=1357))
    assert not classifier.belongs_in_broadcast_queue(tcp(payload=1357), link_broadcast=False)


def test_connection_setup_segments_are_not_pure_acks():
    classifier = TcpAckClassifier(enabled=True)
    assert not classifier.is_pure_tcp_ack(tcp(syn=True))
    assert not classifier.is_pure_tcp_ack(tcp(syn=True, ack=True))
    assert not classifier.is_pure_tcp_ack(tcp(fin=True))
    assert not classifier.is_pure_tcp_ack(tcp(rst=True))


def test_udp_is_never_classified():
    classifier = TcpAckClassifier(enabled=True)
    udp = Packet.udp_datagram(SRC, DST, 9000, 9000, payload_bytes=100)
    assert not classifier.is_pure_tcp_ack(udp)
    assert not classifier.belongs_in_broadcast_queue(udp, link_broadcast=False)


def test_link_broadcasts_always_use_broadcast_queue():
    classifier = TcpAckClassifier(enabled=False)
    flood = Packet.broadcast_control(SRC, payload_bytes=64)
    assert classifier.belongs_in_broadcast_queue(flood, link_broadcast=True)


def test_disabled_classifier_keeps_acks_unicast():
    classifier = TcpAckClassifier(enabled=False)
    assert not classifier.belongs_in_broadcast_queue(tcp(), link_broadcast=False)
    assert classifier.classified_ack_count == 0


# ---------------------------------------------------------------------------
# Policies (Section 3 / 6 variants)
# ---------------------------------------------------------------------------

def test_na_policy_allows_single_subframe_only():
    policy = no_aggregation()
    assert policy.max_unicast_subframes == 1
    assert policy.max_broadcast_subframes == 1
    assert not policy.mixes_broadcast_and_unicast
    assert not policy.classify_tcp_acks_as_broadcast
    assert not policy.is_delayed


def test_ua_policy_aggregates_unicast_only():
    policy = unicast_aggregation()
    assert policy.max_unicast_subframes > 1
    assert not policy.mixes_broadcast_and_unicast
    assert not policy.classify_tcp_acks_as_broadcast


def test_ba_policy_aggregates_everything_and_classifies():
    policy = broadcast_aggregation()
    assert policy.aggregate_broadcast and policy.aggregate_unicast
    assert policy.classify_tcp_acks_as_broadcast
    assert policy.mixes_broadcast_and_unicast
    assert policy.max_aggregate_bytes == kilobytes(5)


def test_dba_policy_requires_minimum_queue_occupancy():
    policy = delayed_broadcast_aggregation(min_frames=3)
    assert policy.is_delayed
    assert policy.min_frames_before_transmit == 3
    assert policy.delayed_flush_timeout > 0


def test_forward_aggregation_disabled_limits_each_portion_to_one():
    policy = broadcast_aggregation().without_forward_aggregation()
    assert policy.max_unicast_subframes == 1
    assert policy.max_broadcast_subframes == 1
    assert policy.classify_tcp_acks_as_broadcast  # backward aggregation still active


def test_policy_variants_are_copies():
    base = broadcast_aggregation()
    resized = base.with_max_aggregate_bytes(kilobytes(11))
    assert base.max_aggregate_bytes == kilobytes(5)
    assert resized.max_aggregate_bytes == kilobytes(11)
    pinned = base.with_broadcast_rate(0.65)
    assert pinned.broadcast_rate_mbps == 0.65
    assert base.broadcast_rate_mbps is None


def test_policy_validation():
    with pytest.raises(ConfigurationError):
        broadcast_aggregation(max_aggregate_bytes=100)
    with pytest.raises(ConfigurationError):
        delayed_broadcast_aggregation(min_frames=0)
