"""Integration tests for the DCF MAC: single-hop exchanges over the real PHY/channel."""

from __future__ import annotations

from typing import List, Tuple

import pytest

from repro.channel import WirelessChannel
from repro.core import broadcast_aggregation, no_aggregation, unicast_aggregation
from repro.mac.addresses import BROADCAST_MAC, MacAddress
from repro.mac.dcf import AggregatingMac, MacConfig, MacState
from repro.net.address import IpAddress
from repro.net.packet import Packet, TcpHeader
from repro.phy.device import Phy
from repro.phy.rates import hydra_rate_table
from repro.sim import Simulator

RATES = hydra_rate_table()


def build_pair(sim, policy_a=None, policy_b=None, rate_mbps=1.3, use_rts=True,
               use_block_ack=False, spacing=2.5):
    channel = WirelessChannel(sim)
    macs = []
    for index, policy in ((1, policy_a), (2, policy_b)):
        phy = Phy(sim, channel, position=((index - 1) * spacing, 0.0), name=f"phy{index}")
        config = MacConfig(address=MacAddress.node(index), unicast_rate=RATES.by_mbps(rate_mbps),
                           use_rts_cts=use_rts, use_block_ack=use_block_ack)
        mac = AggregatingMac(sim, phy, config, policy=policy or broadcast_aggregation(),
                             name=f"mac{index}")
        macs.append(mac)
    return channel, macs[0], macs[1]


def collect(mac) -> List[Tuple[Packet, MacAddress]]:
    received = []
    mac.set_receive_callback(lambda packet, src: received.append((packet, src)))
    return received


def tcp_data(payload=1357):
    header = TcpHeader(src_port=1, dst_port=2, flags_ack=True)
    return Packet.tcp_segment(IpAddress("10.0.0.1"), IpAddress("10.0.0.2"), header,
                              payload_bytes=payload)


def tcp_ack():
    header = TcpHeader(src_port=2, dst_port=1, flags_ack=True)
    return Packet.tcp_segment(IpAddress("10.0.0.2"), IpAddress("10.0.0.1"), header)


def test_single_unicast_exchange_with_rts_cts_and_ack():
    sim = Simulator(seed=31)
    _, a, b = build_pair(sim)
    received = collect(b)
    a.enqueue(tcp_data(), MacAddress.node(2))
    sim.run(until=1.0)
    assert len(received) == 1
    assert received[0][1] == MacAddress.node(1)
    assert a.stats.data_transmissions == 1
    assert a.stats.rts_sent == 1
    assert a.stats.acks_received == 1
    assert b.stats.cts_sent == 1
    assert b.stats.acks_sent == 1
    assert a.state is MacState.IDLE and a.queues.empty


def test_exchange_without_rts_cts():
    sim = Simulator(seed=32)
    _, a, b = build_pair(sim, use_rts=False)
    received = collect(b)
    a.enqueue(tcp_data(), MacAddress.node(2))
    sim.run(until=1.0)
    assert len(received) == 1
    assert a.stats.rts_sent == 0
    assert a.stats.acks_received == 1


def test_unicast_aggregation_packs_multiple_packets_into_one_frame():
    sim = Simulator(seed=33)
    _, a, b = build_pair(sim, policy_a=unicast_aggregation())
    received = collect(b)
    for _ in range(3):
        a.enqueue(tcp_data(), MacAddress.node(2))
    sim.run(until=1.0)
    assert len(received) == 3
    assert a.stats.data_transmissions == 1
    assert a.stats.average_subframes_per_frame == pytest.approx(3.0)


def test_no_aggregation_sends_one_frame_per_packet():
    sim = Simulator(seed=34)
    _, a, b = build_pair(sim, policy_a=no_aggregation())
    received = collect(b)
    for _ in range(3):
        a.enqueue(tcp_data(), MacAddress.node(2))
    sim.run(until=2.0)
    assert len(received) == 3
    assert a.stats.data_transmissions == 3


def test_classified_tcp_ack_rides_in_broadcast_portion_without_link_ack():
    sim = Simulator(seed=35)
    _, a, b = build_pair(sim, policy_a=broadcast_aggregation())
    received = collect(b)
    a.enqueue(tcp_ack(), MacAddress.node(2))
    sim.run(until=1.0)
    assert len(received) == 1
    # A broadcast-only frame: no RTS and no link-level ACK.
    assert a.stats.rts_sent == 0
    assert a.stats.acks_received == 0
    assert b.stats.acks_sent == 0
    assert a.stats.broadcast_subframes_sent == 1
    assert a.stats.classified_ack_subframes_sent == 1


def test_tcp_ack_stays_unicast_when_classification_disabled():
    sim = Simulator(seed=36)
    _, a, b = build_pair(sim, policy_a=unicast_aggregation())
    received = collect(b)
    a.enqueue(tcp_ack(), MacAddress.node(2))
    sim.run(until=1.0)
    assert len(received) == 1
    assert a.stats.acks_received == 1
    assert a.stats.unicast_subframes_sent == 1


def test_data_and_reverse_ack_share_one_frame_with_ba():
    sim = Simulator(seed=37)
    _, a, b = build_pair(sim, policy_a=broadcast_aggregation())
    received = collect(b)
    a.enqueue(tcp_ack(), MacAddress.node(2))   # goes to the broadcast queue
    a.enqueue(tcp_data(), MacAddress.node(2))  # goes to the unicast queue
    sim.run(until=1.0)
    assert len(received) == 2
    assert a.stats.data_transmissions == 1
    assert a.stats.broadcast_subframes_sent == 1
    assert a.stats.unicast_subframes_sent == 1


def test_link_broadcast_delivered_to_all_neighbours():
    sim = Simulator(seed=38)
    channel = WirelessChannel(sim)
    macs = []
    for index in range(1, 4):
        phy = Phy(sim, channel, position=(index * 2.0, 0.0), name=f"phy{index}")
        config = MacConfig(address=MacAddress.node(index), unicast_rate=RATES.by_mbps(1.3))
        macs.append(AggregatingMac(sim, phy, config, policy=broadcast_aggregation(),
                                   name=f"mac{index}"))
    received = [collect(mac) for mac in macs]
    flood = Packet.broadcast_control(IpAddress("10.0.0.1"), payload_bytes=64)
    macs[0].enqueue(flood, BROADCAST_MAC)
    sim.run(until=1.0)
    assert len(received[1]) == 1 and len(received[2]) == 1
    assert macs[0].stats.acks_received == 0


def test_overheard_classified_ack_not_delivered_to_third_party():
    sim = Simulator(seed=39)
    channel = WirelessChannel(sim)
    macs = []
    for index in range(1, 4):
        phy = Phy(sim, channel, position=(index * 2.0, 0.0), name=f"phy{index}")
        config = MacConfig(address=MacAddress.node(index), unicast_rate=RATES.by_mbps(1.3))
        macs.append(AggregatingMac(sim, phy, config, policy=broadcast_aggregation(),
                                   name=f"mac{index}"))
    received = [collect(mac) for mac in macs]
    macs[0].enqueue(tcp_ack(), MacAddress.node(2))
    sim.run(until=1.0)
    assert len(received[1]) == 1   # the addressed next hop gets it
    assert len(received[2]) == 0   # the overhearing node drops it at the MAC
    assert macs[2].stats.overheard_dropped == 1


def test_two_contending_transmitters_both_deliver():
    sim = Simulator(seed=40)
    channel = WirelessChannel(sim)
    macs = []
    for index in range(1, 3):
        phy = Phy(sim, channel, position=(index * 2.0, 0.0), name=f"phy{index}")
        config = MacConfig(address=MacAddress.node(index), unicast_rate=RATES.by_mbps(1.3))
        macs.append(AggregatingMac(sim, phy, config, policy=unicast_aggregation(),
                                   name=f"mac{index}"))
    received_a, received_b = collect(macs[0]), collect(macs[1])
    for _ in range(5):
        macs[0].enqueue(tcp_data(500), MacAddress.node(2))
        macs[1].enqueue(tcp_data(500), MacAddress.node(1))
    sim.run(until=5.0)
    assert len(received_b) == 5
    assert len(received_a) == 5


def test_block_ack_mode_completes_exchanges():
    sim = Simulator(seed=41)
    _, a, b = build_pair(sim, policy_a=unicast_aggregation(), use_block_ack=True)
    received = collect(b)
    for _ in range(3):
        a.enqueue(tcp_data(), MacAddress.node(2))
    sim.run(until=2.0)
    assert len(received) == 3
    assert a.stats.data_transmissions >= 1


def test_queue_overflow_counted():
    sim = Simulator(seed=42)
    channel = WirelessChannel(sim)
    phy = Phy(sim, channel, position=(0.0, 0.0), name="solo")
    config = MacConfig(address=MacAddress.node(1), unicast_rate=RATES.by_mbps(1.3),
                       queue_capacity=2)
    mac = AggregatingMac(sim, phy, config, policy=no_aggregation(), name="solo-mac")
    for _ in range(5):
        mac.enqueue(tcp_data(), MacAddress.node(2))
    assert mac.stats.queue_drops >= 1


def test_queue_drop_metric_is_labelled_by_queue_kind():
    from repro.obs.metrics import MetricsRegistry

    sim = Simulator(seed=42)
    sim.metrics = MetricsRegistry(enabled=True)
    channel = WirelessChannel(sim)
    phy = Phy(sim, channel, position=(0.0, 0.0), name="solo")
    config = MacConfig(address=MacAddress.node(1), unicast_rate=RATES.by_mbps(1.3),
                       queue_capacity=1)
    mac = AggregatingMac(sim, phy, config, policy=broadcast_aggregation(),
                         name="solo-mac")
    for _ in range(3):
        mac.enqueue(tcp_data(), MacAddress.node(2))
        mac.enqueue(Packet.broadcast_control(IpAddress("10.0.0.1"),
                                             payload_bytes=64), BROADCAST_MAC)
    counters = {(c["name"], c["labels"].get("kind")): c["value"]
                for c in sim.metrics.snapshot()["counters"]
                if c["name"] == "mac.queue_drops"}
    assert counters[("mac.queue_drops", "unicast")] == 2
    assert counters[("mac.queue_drops", "broadcast")] == 2


def test_unreachable_destination_gives_up_after_retry_limit():
    sim = Simulator(seed=43)
    channel = WirelessChannel(sim)
    # Only one node on the channel: nobody will ever answer the RTS.
    phy = Phy(sim, channel, position=(0.0, 0.0), name="lonely")
    config = MacConfig(address=MacAddress.node(1), unicast_rate=RATES.by_mbps(1.3))
    mac = AggregatingMac(sim, phy, config, policy=unicast_aggregation(), name="lonely-mac")
    mac.enqueue(tcp_data(), MacAddress.node(2))
    sim.run(until=10.0)
    assert mac.stats.retransmissions >= config.timing.retry_limit
    assert mac.stats.unicast_drops == 1
    assert mac.state is MacState.IDLE
    assert mac.idle
