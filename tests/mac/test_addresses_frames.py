"""Unit tests for MAC addresses and frame size accounting."""

from __future__ import annotations

import pytest

from repro.errors import AddressError
from repro.mac.addresses import BROADCAST_MAC, MacAddress
from repro.mac.frames import (
    ACK_FRAME_BYTES,
    CTS_FRAME_BYTES,
    MIN_SUBFRAME_BYTES,
    RTS_FRAME_BYTES,
    SUBFRAME_OVERHEAD_BYTES,
    AckFrame,
    CtsFrame,
    MacSubframe,
    RtsFrame,
    subframe_for_packet,
)
from repro.net.address import IpAddress
from repro.net.packet import Packet, TcpHeader


def tcp_packet(payload: int, ack_only: bool = False) -> Packet:
    header = TcpHeader(src_port=5001, dst_port=6001, flags_ack=True)
    return Packet.tcp_segment(IpAddress("10.0.0.1"), IpAddress("10.0.0.2"), header,
                              payload_bytes=0 if ack_only else payload)


# ---------------------------------------------------------------------------
# MacAddress
# ---------------------------------------------------------------------------

def test_mac_address_parsing_and_formatting():
    address = MacAddress("02:00:00:00:00:2a")
    assert address.value == 0x02000000002A
    assert str(address) == "02:00:00:00:00:2a"
    assert MacAddress(address) == address


def test_mac_address_node_constructor():
    assert MacAddress.node(1) != MacAddress.node(2)
    assert str(MacAddress.node(5)).endswith("05")
    with pytest.raises(AddressError):
        MacAddress.node(0)


def test_broadcast_mac():
    assert BROADCAST_MAC.is_broadcast
    assert not MacAddress.node(1).is_broadcast
    assert BROADCAST_MAC == MacAddress("ff:ff:ff:ff:ff:ff")


def test_mac_address_validation():
    with pytest.raises(AddressError):
        MacAddress("not-a-mac")
    with pytest.raises(AddressError):
        MacAddress("02:00:00:00:00")
    with pytest.raises(AddressError):
        MacAddress(-1)
    with pytest.raises(AddressError):
        MacAddress(2 ** 48)


def test_mac_address_hash_and_ordering():
    a, b = MacAddress.node(1), MacAddress.node(2)
    assert len({a, MacAddress.node(1), b}) == 2
    assert a < b


# ---------------------------------------------------------------------------
# Frame sizes (Section 5 of the paper)
# ---------------------------------------------------------------------------

def test_tcp_data_subframe_is_1464_bytes():
    """An MSS-sized (1357 B) TCP segment becomes a 1464 B MAC frame."""
    packet = tcp_packet(1357)
    subframe = subframe_for_packet(packet, MacAddress.node(1), MacAddress.node(2))
    assert packet.size_bytes == 1357 + 20 + 20
    assert subframe.size_bytes == 1464


def test_pure_tcp_ack_subframe_is_160_bytes():
    """A pure TCP ACK becomes a 160 B MAC frame (padded to the minimum size)."""
    packet = tcp_packet(0, ack_only=True)
    subframe = subframe_for_packet(packet, MacAddress.node(1), MacAddress.node(2))
    assert subframe.size_bytes == MIN_SUBFRAME_BYTES == 160
    assert subframe.overhead_bytes == 160 - 40


def test_subframe_overhead_accounting():
    packet = tcp_packet(1000)
    subframe = subframe_for_packet(packet, MacAddress.node(1), MacAddress.node(2))
    assert subframe.size_bytes == packet.size_bytes + SUBFRAME_OVERHEAD_BYTES
    assert subframe.overhead_bytes == SUBFRAME_OVERHEAD_BYTES


def test_subframe_broadcast_flag_follows_destination():
    packet = tcp_packet(100)
    unicast = subframe_for_packet(packet, MacAddress.node(1), MacAddress.node(2))
    broadcast = subframe_for_packet(packet, MacAddress.node(1), BROADCAST_MAC)
    assert not unicast.transmit_in_broadcast_portion
    assert broadcast.transmit_in_broadcast_portion
    assert broadcast.is_link_broadcast


def test_subframe_sequence_numbers_are_unique():
    packet = tcp_packet(10)
    first = subframe_for_packet(packet, MacAddress.node(1), MacAddress.node(2))
    second = subframe_for_packet(packet, MacAddress.node(1), MacAddress.node(2))
    assert first.sequence != second.sequence


def test_control_frame_sizes():
    assert RtsFrame(MacAddress.node(1), MacAddress.node(2)).size_bytes == RTS_FRAME_BYTES == 20
    assert CtsFrame(MacAddress.node(1)).size_bytes == CTS_FRAME_BYTES == 14
    assert AckFrame(MacAddress.node(1)).size_bytes == ACK_FRAME_BYTES == 14


def test_udp_mac_frame_is_1140_bytes():
    """The paper's UDP payload produces 1140 B MAC frames."""
    from repro.apps.cbr import PAPER_UDP_PAYLOAD_BYTES
    packet = Packet.udp_datagram(IpAddress("10.0.0.1"), IpAddress("10.0.0.2"), 9000, 9000,
                                 payload_bytes=PAPER_UDP_PAYLOAD_BYTES)
    subframe = subframe_for_packet(packet, MacAddress.node(1), MacAddress.node(2))
    assert subframe.size_bytes == 1140
