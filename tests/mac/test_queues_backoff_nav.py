"""Unit tests for the MAC transmit queues, backoff controller and NAV."""

from __future__ import annotations

import random

import pytest

from repro.mac.addresses import BROADCAST_MAC, MacAddress
from repro.mac.backoff import BackoffController
from repro.mac.frames import subframe_for_packet
from repro.mac.nav import NetworkAllocationVector
from repro.mac.queues import TransmitQueues
from repro.mac.timing import HYDRA_MAC_TIMING, MacTimingProfile
from repro.net.address import IpAddress
from repro.net.packet import Packet, TcpHeader
from repro.errors import ConfigurationError


def make_subframe(dst_index=2, payload=1357):
    header = TcpHeader(src_port=1, dst_port=2, flags_ack=True)
    packet = Packet.tcp_segment(IpAddress("10.0.0.1"), IpAddress("10.0.0.9"), header,
                                payload_bytes=payload)
    dst = BROADCAST_MAC if dst_index is None else MacAddress.node(dst_index)
    return subframe_for_packet(packet, MacAddress.node(1), dst)


# ---------------------------------------------------------------------------
# TransmitQueues
# ---------------------------------------------------------------------------

def test_enqueue_and_counts():
    queues = TransmitQueues(capacity=4)
    assert queues.empty
    queues.enqueue_unicast(make_subframe())
    queues.enqueue_broadcast(make_subframe(dst_index=None))
    assert queues.unicast_count == 1
    assert queues.broadcast_count == 1
    assert queues.total_count == 2
    assert not queues.empty


def test_queue_capacity_drops():
    queues = TransmitQueues(capacity=2)
    assert queues.enqueue_unicast(make_subframe())
    assert queues.enqueue_unicast(make_subframe())
    assert not queues.enqueue_unicast(make_subframe())
    assert queues.drops_unicast == 1
    assert queues.enqueue_broadcast(make_subframe(dst_index=None))


def test_head_unicast_destination_and_take():
    queues = TransmitQueues()
    to2a, to3, to2b = make_subframe(2), make_subframe(3), make_subframe(2)
    for sf in (to2a, to3, to2b):
        queues.enqueue_unicast(sf)
    assert queues.head_unicast_destination() == MacAddress.node(2)
    taken = queues.take_unicast_for(MacAddress.node(2), max_subframes=5, fits=lambda sf: True)
    assert taken == [to2a, to2b]
    # The non-matching subframe stays, in order.
    assert queues.peek_unicast() == [to3]


def test_take_unicast_respects_max_and_fits():
    queues = TransmitQueues()
    subframes = [make_subframe(2) for _ in range(4)]
    for sf in subframes:
        queues.enqueue_unicast(sf)
    taken = queues.take_unicast_for(MacAddress.node(2), max_subframes=2, fits=lambda sf: True)
    assert len(taken) == 2
    assert queues.unicast_count == 2
    # fits() can veto subframes.
    taken = queues.take_unicast_for(MacAddress.node(2), max_subframes=5, fits=lambda sf: False)
    assert taken == []
    assert queues.unicast_count == 2


def test_requeue_unicast_front_preserves_order():
    queues = TransmitQueues()
    first, second = make_subframe(2), make_subframe(2)
    queues.enqueue_unicast(make_subframe(3))
    queues.requeue_unicast_front([first, second])
    assert queues.peek_unicast()[0] is first
    assert queues.peek_unicast()[1] is second


def test_pop_broadcast_head_fifo():
    queues = TransmitQueues()
    a, b = make_subframe(dst_index=None), make_subframe(dst_index=None)
    queues.enqueue_broadcast(a)
    queues.enqueue_broadcast(b)
    assert queues.pop_broadcast_head() is a
    assert queues.pop_broadcast_head() is b
    assert queues.pop_broadcast_head() is None


def test_clear():
    queues = TransmitQueues()
    queues.enqueue_unicast(make_subframe())
    queues.enqueue_broadcast(make_subframe(dst_index=None))
    queues.clear()
    assert queues.empty


# ---------------------------------------------------------------------------
# BackoffController
# ---------------------------------------------------------------------------

def test_backoff_draw_within_window():
    backoff = BackoffController(HYDRA_MAC_TIMING, random.Random(1))
    for _ in range(100):
        slots = backoff.draw()
        assert 0 <= slots < HYDRA_MAC_TIMING.cw_min


def test_backoff_doubles_and_caps():
    timing = MacTimingProfile(cw_min=16, cw_max=64)
    backoff = BackoffController(timing, random.Random(1))
    backoff.on_failure()
    assert backoff.contention_window == 32
    backoff.on_failure()
    assert backoff.contention_window == 64
    backoff.on_failure()
    assert backoff.contention_window == 64
    backoff.on_success()
    assert backoff.contention_window == 16


def test_backoff_consume_and_expired():
    backoff = BackoffController(HYDRA_MAC_TIMING, random.Random(3))
    backoff.slots_remaining = 5
    backoff.consume(3)
    assert backoff.slots_remaining == 2
    backoff.consume(10)
    assert backoff.slots_remaining == 0
    assert backoff.expired


# ---------------------------------------------------------------------------
# MacTimingProfile
# ---------------------------------------------------------------------------

def test_difs_is_sifs_plus_two_slots():
    timing = MacTimingProfile(sifs=1e-4, slot_time=5e-5)
    assert timing.difs == pytest.approx(2e-4)
    assert timing.eifs > timing.difs


def test_timing_validation():
    with pytest.raises(ConfigurationError):
        MacTimingProfile(sifs=0)
    with pytest.raises(ConfigurationError):
        MacTimingProfile(cw_min=0)
    with pytest.raises(ConfigurationError):
        MacTimingProfile(cw_min=32, cw_max=16)


def test_response_timeout_includes_guard():
    timing = HYDRA_MAC_TIMING
    assert timing.response_timeout(0.001) == pytest.approx(timing.sifs + 0.001 + timing.timeout_guard)


# ---------------------------------------------------------------------------
# NetworkAllocationVector
# ---------------------------------------------------------------------------

def test_nav_reserves_medium(sim):
    nav = NetworkAllocationVector(sim)
    assert not nav.busy
    nav.update(0.5)
    assert nav.busy
    assert nav.remaining() == pytest.approx(0.5)


def test_nav_extends_only_forward(sim):
    nav = NetworkAllocationVector(sim)
    nav.update(0.5)
    nav.update(0.2)  # shorter reservation must not shrink the NAV
    assert nav.until == pytest.approx(0.5)
    nav.update(1.0)
    assert nav.until == pytest.approx(1.0)


def test_nav_expiry_callback(sim):
    fired = []
    nav = NetworkAllocationVector(sim, on_expire=lambda: fired.append(sim.now))
    nav.update(0.25)
    sim.run()
    assert fired == [pytest.approx(0.25)]
    assert not nav.busy


def test_nav_clear(sim):
    nav = NetworkAllocationVector(sim, on_expire=lambda: None)
    nav.update(1.0)
    nav.clear()
    assert not nav.busy
    assert nav.remaining() == 0.0
