"""Unit tests for unit helpers, the error hierarchy and MAC statistics."""

from __future__ import annotations

import pytest

from repro import errors, units
from repro.mac.addresses import BROADCAST_MAC, MacAddress
from repro.mac.frames import subframe_for_packet
from repro.mac.stats import MacStatistics
from repro.net.address import IpAddress
from repro.net.packet import Packet, TcpHeader
from repro.phy.frame import PhyFrame
from repro.phy.rates import hydra_rate_table
from repro.phy.timing import PhyTimingConfig

RATES = hydra_rate_table()


# ---------------------------------------------------------------------------
# units
# ---------------------------------------------------------------------------

def test_time_conversions():
    assert units.milliseconds(3) == pytest.approx(0.003)
    assert units.microseconds(60) == pytest.approx(6e-5)
    assert units.to_microseconds(0.001) == pytest.approx(1000.0)
    assert units.seconds(2.5) == 2.5


def test_size_conversions():
    assert units.bits(10) == 80
    assert units.bytes_from_bits(80) == 10
    assert units.kilobytes(5) == 5120
    assert units.megabytes(0.2) == 209715


def test_rate_conversions_and_transmission_time():
    assert units.mbps(1.3) == pytest.approx(1.3e6)
    assert units.kbps(650) == pytest.approx(650e3)
    assert units.to_mbps(650_000) == pytest.approx(0.65)
    assert units.transmission_time(1464, units.mbps(0.65)) == pytest.approx(1464 * 8 / 0.65e6)
    with pytest.raises(ValueError):
        units.transmission_time(100, 0)


def test_throughput_helper():
    assert units.throughput_mbps(125_000, 1.0) == pytest.approx(1.0)
    assert units.throughput_mbps(1000, 0.0) == 0.0


# ---------------------------------------------------------------------------
# error hierarchy
# ---------------------------------------------------------------------------

def test_all_errors_derive_from_repro_error():
    for name in ("ConfigurationError", "SimulationError", "SchedulingError", "PhyError",
                 "MacError", "AggregationError", "RoutingError", "TransportError",
                 "TcpStateError", "AddressError", "ExperimentError"):
        cls = getattr(errors, name)
        assert issubclass(cls, errors.ReproError)
    assert issubclass(errors.SchedulingError, errors.SimulationError)
    assert issubclass(errors.TcpStateError, errors.TransportError)


# ---------------------------------------------------------------------------
# MacStatistics
# ---------------------------------------------------------------------------

def _frame(n_data=2, n_acks=1, rate=RATES.by_mbps(1.3)):
    src, dst = MacAddress.node(1), MacAddress.node(2)
    data_header = TcpHeader(src_port=1, dst_port=2, flags_ack=True)
    data = [subframe_for_packet(
        Packet.tcp_segment(IpAddress("10.0.0.1"), IpAddress("10.0.0.3"), data_header,
                           payload_bytes=1357), src, dst) for _ in range(n_data)]
    acks = [subframe_for_packet(
        Packet.tcp_segment(IpAddress("10.0.0.3"), IpAddress("10.0.0.1"), data_header),
        src, MacAddress.node(3), broadcast_portion=True) for _ in range(n_acks)]
    return PhyFrame.data(acks, data, unicast_rate=rate)


def test_record_data_frame_accumulates_sizes_and_counts():
    stats = MacStatistics()
    timing = PhyTimingConfig()
    stats.record_data_frame(0.0, _frame(n_data=2, n_acks=1), timing)
    assert stats.data_transmissions == 1
    assert stats.unicast_subframes_sent == 2
    assert stats.broadcast_subframes_sent == 1
    assert stats.classified_ack_subframes_sent == 1
    assert stats.average_frame_size == pytest.approx(2 * 1464 + 160)
    assert stats.average_subframes_per_frame == pytest.approx(3.0)
    assert stats.payload_airtime > 0
    assert stats.header_airtime > 0


def test_overhead_fractions_between_zero_and_one():
    stats = MacStatistics()
    timing = PhyTimingConfig()
    assert stats.size_overhead_fraction == 0.0
    assert stats.time_overhead_fraction == 0.0
    stats.record_data_frame(0.0, _frame(), timing)
    stats.record_control_frame("rts", 0.0005)
    stats.record_control_frame("cts", 0.0005)
    stats.record_control_frame("ack", 0.0005)
    stats.record_ifs(0.0002)
    stats.record_contention(0.0005)
    assert 0.0 < stats.size_overhead_fraction < 1.0
    assert 0.0 < stats.time_overhead_fraction < 1.0
    assert stats.rts_sent == 1 and stats.cts_sent == 1 and stats.acks_sent == 1


def test_broadcast_only_frame_counted():
    stats = MacStatistics()
    timing = PhyTimingConfig()
    frame = _frame(n_data=0, n_acks=2)
    stats.record_data_frame(0.0, frame, timing)
    assert stats.broadcast_only_transmissions == 1
    assert stats.total_subframes_sent == 2


def test_summary_is_flat_and_rounded():
    stats = MacStatistics()
    stats.record_data_frame(0.0, _frame(), PhyTimingConfig())
    summary = stats.summary()
    assert set(summary) >= {"data_transmissions", "average_frame_size", "size_overhead",
                            "time_overhead", "retransmissions"}
    assert isinstance(summary["average_frame_size"], float)


def test_more_aggregation_means_lower_size_overhead():
    timing = PhyTimingConfig()
    small = MacStatistics()
    small.record_data_frame(0.0, _frame(n_data=1, n_acks=0), timing)
    large = MacStatistics()
    large.record_data_frame(0.0, _frame(n_data=3, n_acks=0), timing)
    assert large.size_overhead_fraction < small.size_overhead_fraction
