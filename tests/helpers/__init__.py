"""Shared test helpers (importable because tests/conftest.py puts tests/ on sys.path)."""
