"""Reusable routing property-test harness.

Shared by the DSDV and AODV property tests (and anything else that needs a
random connected topology): generation of random connected node placements
under the radio's decodability geometry, BFS ground-truth distances, and
hop-by-hop route walking that asserts loop freedom.

The geometry constants: the default indoor propagation model decodes out to
~12.5 m, but subframe survival at 0.65 Mbps only stays ~1.0 up to ~8 m and
collapses past 10 m.  Graph edges therefore require <= ``LINK_M``
(reliable), non-edges require > ``NO_LINK_M`` (undecodable), and placements
with any pair in the lossy band between them are rejected — the connectivity
graph the properties check then matches what the radios actually experience.
"""

from __future__ import annotations

import math
import random
from collections import deque
from typing import Dict, List, Sequence, Tuple

LINK_M = 8.0
NO_LINK_M = 12.5


def connectivity(positions: Sequence[Tuple[float, float]]) -> List[List[int]]:
    """Adjacency lists under the decodability range."""
    n = len(positions)
    adjacency: List[List[int]] = [[] for _ in range(n)]
    for i in range(n):
        for j in range(i + 1, n):
            if math.dist(positions[i], positions[j]) <= LINK_M:
                adjacency[i].append(j)
                adjacency[j].append(i)
    return adjacency


def bfs_distances(adjacency: List[List[int]], start: int) -> Dict[int, int]:
    """Hop distances from ``start`` on the connectivity graph."""
    distances = {start: 0}
    queue = deque([start])
    while queue:
        node = queue.popleft()
        for neighbor in adjacency[node]:
            if neighbor not in distances:
                distances[neighbor] = distances[node] + 1
                queue.append(neighbor)
    return distances


def ambiguous(positions: Sequence[Tuple[float, float]]) -> bool:
    """True when any pair sits in the lossy band between link and no-link."""
    n = len(positions)
    for i in range(n):
        for j in range(i + 1, n):
            distance = math.dist(positions[i], positions[j])
            if LINK_M < distance <= NO_LINK_M:
                return True
    return False


def connected_placement(rng: random.Random, node_count: int,
                        area_m: float) -> List[Tuple[float, float]]:
    """Random positions, rejected until connected and unambiguous."""
    while True:
        positions = [(rng.uniform(0.0, area_m), rng.uniform(0.0, area_m))
                     for _ in range(node_count)]
        if ambiguous(positions):
            continue
        adjacency = connectivity(positions)
        if len(bfs_distances(adjacency, 0)) == node_count:
            return positions


def walk_route(nodes: Sequence, source_index: int, dest_index: int) -> int:
    """Follow next hops from source to destination; return the hop count.

    Asserts the route-validity invariant at every step: each node along the
    path holds a valid entry for the destination, no node is visited twice
    (loop freedom), and the walk terminates at the destination.  Node indices
    are positions in ``nodes`` (0-based), which must expose ``.ip`` and
    ``.router.table``.
    """
    index_of = {node.ip: i for i, node in enumerate(nodes)}
    target = nodes[dest_index]
    current, hops, visited = source_index, 0, {source_index}
    while current != dest_index:
        entry = nodes[current].router.table.entry_for(target.ip)
        assert entry is not None and entry.valid, (
            f"node {current + 1} has no valid route to node {dest_index + 1}")
        current = index_of[entry.next_hop]
        hops += 1
        assert current not in visited, (
            f"routing loop towards node {dest_index + 1} at node {current + 1}")
        visited.add(current)
        assert hops <= len(nodes)
    return hops


def assert_routes_loop_free_and_shortest(
        scenario, positions: Sequence[Tuple[float, float]]) -> None:
    """The proactive (DSDV) property: every pair, loop-free AND shortest.

    For every ordered pair the stored metric must equal the BFS distance on
    the connectivity graph and the walked path must realize exactly that many
    hops without revisiting a node.
    """
    adjacency = connectivity(positions)
    nodes = scenario.network.nodes
    for i, node in enumerate(nodes):
        distances = bfs_distances(adjacency, i)
        for j, target in enumerate(nodes):
            if i == j:
                continue
            expected = distances[j]
            entry = node.router.table.entry_for(target.ip)
            assert entry is not None and entry.valid, (
                f"node {i + 1} has no route to node {j + 1}")
            assert entry.metric == expected, (
                f"node {i + 1} -> node {j + 1}: metric {entry.metric}, "
                f"BFS distance {expected}")
            assert walk_route(nodes, i, j) == expected


def assert_routes_loop_free_and_reach(
        scenario, pairs: Sequence[Tuple[int, int]]) -> None:
    """The reactive (AODV) property: every requested pair, loop-free + valid.

    After a demand-driven warm-up, each requested (source, destination) pair
    must hold a route whose hop-by-hop walk reaches the destination without
    loops.  On-demand routes need not be shortest — they follow whichever
    RREQ copy won the flood — so only validity and loop freedom are asserted.
    ``pairs`` are 0-based indices into ``scenario.network.nodes``.
    """
    nodes = scenario.network.nodes
    for source_index, dest_index in pairs:
        walk_route(nodes, source_index, dest_index)
