"""SVG plot export and run-all glob filtering."""

from __future__ import annotations

import xml.etree.ElementTree as ElementTree

import pytest

from repro.campaign.cli import _select_experiments, main
from repro.stats.results import ExperimentResult, Series
from repro.stats.svg import render_svg, write_svg

SVG_NS = "{http://www.w3.org/2000/svg}"


def _sample_result(with_errors: bool = True) -> ExperimentResult:
    result = ExperimentResult(experiment_id="demo", description="a demo figure")
    for label, offset in (("NA", 0.0), ("BA <x&y>", 0.5)):
        series = result.add_series(Series(label=label))
        for i in range(4):
            error = 0.1 * (i + 1) if with_errors else None
            series.add(float(i), offset + i * 0.25, error)
    return result


class TestSvgRendering:
    def test_output_is_valid_xml_with_one_polyline_per_series(self):
        root = ElementTree.fromstring(render_svg(_sample_result()))
        assert root.tag == f"{SVG_NS}svg"
        polylines = root.findall(f".//{SVG_NS}polyline")
        assert len(polylines) == 2

    def test_error_bars_rendered_only_when_series_carry_them(self):
        with_bars = ElementTree.fromstring(render_svg(_sample_result(True)))
        without = ElementTree.fromstring(render_svg(_sample_result(False)))
        bars = [line for line in with_bars.findall(f".//{SVG_NS}line")
                if line.get("class") == "errorbar"]
        assert len(bars) == 8  # 2 series x 4 points
        assert not [line for line in without.findall(f".//{SVG_NS}line")
                    if line.get("class") == "errorbar"]

    def test_labels_are_escaped(self):
        document = render_svg(_sample_result())
        assert "BA &lt;x&amp;y&gt;" in document
        ElementTree.fromstring(document)  # and it stays well-formed

    def test_empty_result_renders_placeholder(self):
        result = ExperimentResult(experiment_id="empty", description="no curves")
        root = ElementTree.fromstring(render_svg(result))
        texts = [t.text for t in root.findall(f".//{SVG_NS}text")]
        assert "(no series)" in texts

    def test_rendering_is_deterministic(self):
        assert render_svg(_sample_result()) == render_svg(_sample_result())

    def test_write_svg_round_trips_through_disk(self, tmp_path):
        path = tmp_path / "plot.svg"
        write_svg(_sample_result(), str(path))
        ElementTree.parse(str(path))

    def test_degenerate_single_point_series_does_not_crash(self):
        result = ExperimentResult(experiment_id="one", description="one point")
        result.add_series(Series(label="solo", x_values=[2.0], y_values=[5.0]))
        ElementTree.fromstring(render_svg(result))


class TestReportSvgCli:
    def test_report_writes_svg_next_to_text_output(self, tmp_path, capsys):
        import json

        from repro.campaign.runner import CampaignRunner

        outcome = CampaignRunner(jobs=1).run_campaign(
            "fig07", seeds=[1],
            overrides={"rates_mbps": (0.65,), "sizes_kb": (2, 3), "duration": 2.0})
        results_path = tmp_path / "campaign_fig07.json"
        with open(results_path, "w", encoding="utf-8") as handle:
            json.dump(outcome.to_dict(), handle, default=repr)
        svg_path = tmp_path / "fig07.svg"
        exit_code = main(["report", str(results_path), "--svg", str(svg_path)])
        assert exit_code == 0
        ElementTree.parse(str(svg_path))
        assert "SVG written" in capsys.readouterr().out


class TestExperimentGlobs:
    IDS = ("fig07", "fig09", "mob01", "mob03", "rt01", "table02")

    def test_no_patterns_selects_everything(self):
        assert _select_experiments(None, self.IDS) == list(self.IDS)
        assert _select_experiments([], self.IDS) == list(self.IDS)

    def test_single_glob(self):
        assert _select_experiments(["mob*"], self.IDS) == ["mob01", "mob03"]

    def test_comma_separated_and_repeated_patterns_deduplicate(self):
        selected = _select_experiments(["mob*,rt*", "mob01"], self.IDS)
        assert selected == ["mob01", "mob03", "rt01"]

    def test_exact_id_is_a_valid_pattern(self):
        assert _select_experiments(["table02"], self.IDS) == ["table02"]

    def test_unmatched_pattern_is_an_error(self):
        with pytest.raises(SystemExit, match="matches no experiment"):
            _select_experiments(["nope*"], self.IDS)
