"""Campaign satellites: run-all, intra-batch dedup, code-version invalidation."""

from __future__ import annotations

import dataclasses
import importlib.util
import json

import pytest

import repro.campaign.cli as cli
import repro.campaign.runner as runner_module
from repro.campaign.cache import ResultCache, job_key
from repro.campaign.cli import main
from repro.campaign.registry import (
    ExperimentRegistry,
    ExperimentSpec,
    ParameterSpec,
    get_registry,
    module_source_digest,
)
from repro.campaign.runner import CampaignJob, CampaignRunner
from repro.stats.results import ExperimentResult, Series

TINY = {"rates_mbps": (0.65,), "sizes_kb": (2, 3), "duration": 1.5}


# ---------------------------------------------------------------------------
# Code-version cache keys
# ---------------------------------------------------------------------------

def test_job_key_includes_the_code_version():
    params = {"duration": 1.5}
    assert job_key("figX", params, 1, "aaaa") != job_key("figX", params, 1, "bbbb")
    # The empty code version keeps the pre-versioning key (old entries are
    # simply orphaned once specs start carrying digests).
    assert job_key("figX", params, 1) == job_key("figX", params, 1, "")


def test_cache_respects_the_code_version(tmp_path):
    cache = ResultCache(str(tmp_path))
    result = ExperimentResult(experiment_id="figX", description="demo")
    result.add_series(Series(label="S", x_values=[1.0], y_values=[0.5]))
    cache.put("figX", {"duration": 1.5}, 1, result.to_dict(), code_version="v1")
    assert cache.get("figX", {"duration": 1.5}, 1, code_version="v1") is not None
    assert cache.get("figX", {"duration": 1.5}, 1, code_version="v2") is None


def test_every_registered_spec_carries_a_source_digest():
    registry = get_registry()
    for experiment_id in registry.experiment_ids():
        digest = registry.get(experiment_id).source_digest
        assert digest and len(digest) == 16, experiment_id


def test_run_campaign_stamps_jobs_with_the_specs_digest(tmp_path):
    cache = ResultCache(str(tmp_path / "cache"))
    outcome = CampaignRunner(jobs=1, cache=cache).run_campaign(
        "fig07", seeds=[1], overrides=TINY)
    digest = get_registry().get("fig07").source_digest
    assert outcome.outcomes[0].job.code_version == digest


def test_editing_a_runner_module_busts_its_cache_entries(tmp_path):
    """The end-to-end invalidation story on a real module file."""
    module_path = tmp_path / "exp_demo.py"
    module_path.write_text(
        '"""Demo experiment."""\n'
        "EXPERIMENT_ID = 'demo'\n"
        "FAST_PARAMS = {}\n"
        "def run(value=1.0, seed=1):\n"
        "    return value * seed\n")

    def load():
        spec = importlib.util.spec_from_file_location("exp_demo", module_path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    cache = ResultCache(str(tmp_path / "cache"))
    result = ExperimentResult(experiment_id="demo", description="demo")
    digest_before = module_source_digest(load())
    cache.put("demo", {"value": 1.0}, 1, result.to_dict(), code_version=digest_before)
    assert cache.get("demo", {"value": 1.0}, 1, code_version=digest_before) is not None

    # Edit the runner: the digest changes, so the entry is a miss now.
    module_path.write_text(module_path.read_text().replace(
        "value * seed", "value * seed + 1.0"))
    digest_after = module_source_digest(load())
    assert digest_after != digest_before
    assert cache.get("demo", {"value": 1.0}, 1, code_version=digest_after) is None


def test_campaign_reruns_when_the_digest_changes(tmp_path, monkeypatch):
    cache = ResultCache(str(tmp_path / "cache"))
    runner = CampaignRunner(jobs=1, cache=cache)
    first = runner.run_campaign("fig07", seeds=[1], overrides=TINY)
    assert [o.status for o in first.outcomes] == ["ran"]
    second = runner.run_campaign("fig07", seeds=[1], overrides=TINY)
    assert [o.status for o in second.outcomes] == ["cached"]

    registry = get_registry()
    spec = registry.get("fig07")
    monkeypatch.setitem(registry._specs, "fig07",
                        dataclasses.replace(spec, source_digest="f" * 16))
    third = runner.run_campaign("fig07", seeds=[1], overrides=TINY)
    assert [o.status for o in third.outcomes] == ["ran"]


# ---------------------------------------------------------------------------
# Intra-batch dedup
# ---------------------------------------------------------------------------

def test_identical_jobs_in_one_batch_execute_once(tmp_path):
    cache = ResultCache(str(tmp_path / "cache"))
    runner = CampaignRunner(jobs=1, cache=cache)
    job = CampaignJob("fig07", dict(TINY), 1)
    outcomes = runner.run_jobs([job, job, CampaignJob("fig07", dict(TINY), 2)])
    assert [o.status for o in outcomes] == ["ran", "deduped", "ran"]
    assert outcomes[1].result.to_dict() == outcomes[0].result.to_dict()
    # Tuple/list canonicalization applies to dedup too.
    listy = CampaignJob("fig07", {**TINY, "rates_mbps": [0.65], "sizes_kb": [2, 3]}, 1)
    rerun = runner.run_jobs([job, listy])
    assert [o.status for o in rerun] == ["cached", "deduped"]


def test_dedup_works_through_the_process_pool():
    job = CampaignJob("fig07", dict(TINY), 1)
    outcomes = CampaignRunner(jobs=2).run_jobs([job, job])
    assert sorted(o.status for o in outcomes) == ["deduped", "ran"]
    ran = next(o for o in outcomes if o.status == "ran")
    deduped = next(o for o in outcomes if o.status == "deduped")
    assert deduped.result.to_dict() == ran.result.to_dict()


def test_different_code_versions_are_not_deduped(tmp_path, monkeypatch):
    # Identical coordinates but different code versions must both execute.
    a = CampaignJob("fig07", dict(TINY), 1, code_version="aaaa")
    b = CampaignJob("fig07", dict(TINY), 1, code_version="bbbb")
    outcomes = CampaignRunner(jobs=1).run_jobs([a, b])
    assert [o.status for o in outcomes] == ["ran", "ran"]


def test_duplicate_of_a_failed_job_inherits_the_failure(monkeypatch):
    def boom(experiment_id, params, seed):
        raise RuntimeError("job exploded")

    monkeypatch.setattr(runner_module, "execute_job", boom)
    job = CampaignJob("fig07", dict(TINY), 1)
    outcomes = CampaignRunner(jobs=1).run_jobs([job, job])
    assert [o.status for o in outcomes] == ["error", "deduped"]
    assert not outcomes[1].ok
    assert "job exploded" in outcomes[1].error


# ---------------------------------------------------------------------------
# run-all
# ---------------------------------------------------------------------------

def _stub_result(value):
    result = ExperimentResult(experiment_id="stub", description="stub")
    result.add_series(Series(label="S", x_values=[1.0], y_values=[value]))
    return result


def _stub_registry(fail_id=None):
    registry = ExperimentRegistry()
    for experiment_id in ("stub01", "stub02"):
        def make_run(eid):
            def run(value=1.0, seed=1):
                if eid == fail_id:
                    raise RuntimeError("stub failure")
                return _stub_result(value * seed)
            return run

        registry.register(ExperimentSpec(
            experiment_id=experiment_id, module_name=f"stub.{experiment_id}",
            description="stub experiment", run=make_run(experiment_id),
            parameters=(ParameterSpec("value", 1.0, ""), ParameterSpec("seed", 1, "")),
            fast_params={}, source_digest="0" * 16))
    return registry


def test_run_all_sweeps_every_registered_experiment(tmp_path, monkeypatch, capsys):
    registry = _stub_registry()
    monkeypatch.setattr(cli, "get_registry", lambda: registry)
    monkeypatch.setattr(runner_module, "get_registry", lambda: registry)
    out_dir = tmp_path / "results"
    code = main(["run-all", "--seeds", "2", "--timeout", "0",
                 "--cache-dir", str(tmp_path / "cache"), "--out-dir", str(out_dir)])
    assert code == 0
    out = capsys.readouterr().out
    assert "2 experiment(s) x 2 seed(s)" in out
    assert "all 2 experiments completed" in out
    for experiment_id in ("stub01", "stub02"):
        payload = json.loads((out_dir / f"campaign_{experiment_id}.json").read_text())
        assert payload["seeds"] == [1, 2]
        assert payload["job_stats"]["ran"] == 2

    # A second invocation is served from the cache.
    assert main(["run-all", "--seeds", "2", "--timeout", "0",
                 "--cache-dir", str(tmp_path / "cache")]) == 0
    assert "4 hit(s)" in capsys.readouterr().out


def test_run_all_reports_failing_experiments(tmp_path, monkeypatch, capsys):
    registry = _stub_registry(fail_id="stub01")
    monkeypatch.setattr(cli, "get_registry", lambda: registry)
    monkeypatch.setattr(runner_module, "get_registry", lambda: registry)
    code = main(["run-all", "--seeds", "1", "--timeout", "0", "--no-cache"])
    assert code == 1
    err = capsys.readouterr().err
    assert "stub01" in err


def test_run_all_registered_in_the_parser():
    parser = cli.build_parser()
    args = parser.parse_args(["run-all", "--seeds", "3", "--full"])
    assert args.command == "run-all"
    assert args.seeds == 3 and args.full
