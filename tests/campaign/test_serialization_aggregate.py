"""JSON round-trips for the result dataclasses and CI-aggregation math."""

from __future__ import annotations

import json
import math

import pytest

from repro.errors import ExperimentError
from repro.stats import (
    ExperimentResult,
    Series,
    TableResult,
    aggregate_experiment_results,
    summarize,
    t_critical_95,
)


def _json_cycle(data):
    return json.loads(json.dumps(data))


# ---------------------------------------------------------------------------
# Round-trips
# ---------------------------------------------------------------------------

def test_series_roundtrip():
    series = Series(label="UA", x_values=[1.0, 2.0], y_values=[0.5, 0.7],
                    y_errors=[0.01, 0.02])
    rebuilt = Series.from_dict(_json_cycle(series.to_dict()))
    assert rebuilt == series


def test_series_roundtrip_without_errors():
    series = Series(label="NA", x_values=[1.0], y_values=[0.5])
    data = series.to_dict()
    assert "y_errors" not in data  # stays compact when no error bars exist
    assert Series.from_dict(_json_cycle(data)) == series


def test_series_add_rejects_mixed_error_bars():
    series = Series(label="UA")
    series.add(1.0, 0.5, error=0.01)
    with pytest.raises(ValueError, match="mix points"):
        series.add(2.0, 0.7)  # error bar missing
    plain = Series(label="NA")
    plain.add(1.0, 0.5)
    with pytest.raises(ValueError, match="mix points"):
        plain.add(2.0, 0.7, error=0.01)  # earlier points have no error bars


def test_table_roundtrip():
    table = TableResult(title="rate", columns=["NA", "UA"],
                        rows={"0.65": [0.25, 0.27], "1.3": [0.43, 0.48]})
    assert TableResult.from_dict(_json_cycle(table.to_dict())) == table


def test_experiment_result_roundtrip():
    result = ExperimentResult(experiment_id="figX", description="demo")
    result.add_series(Series(label="UA", x_values=[1.0], y_values=[0.5]))
    result.add_table(TableResult(title="t", columns=["a"], rows={"r": [1.0]}))
    result.add_metric("gap", 0.12)
    result.note("a note")
    rebuilt = ExperimentResult.from_dict(_json_cycle(result.to_dict()))
    assert rebuilt == result
    assert rebuilt.to_dict() == result.to_dict()


# ---------------------------------------------------------------------------
# Summary statistics (hand-computed fixture)
# ---------------------------------------------------------------------------

def test_summarize_hand_computed():
    # Sample 10, 12, 14: mean 12, sample variance ((4+0+4)/2)=4, stddev 2,
    # ci95 = t(df=2) * 2 / sqrt(3) = 4.303 * 2 / 1.7320508...
    stats = summarize([10.0, 12.0, 14.0])
    assert stats.n == 3
    assert stats.mean == pytest.approx(12.0)
    assert stats.stddev == pytest.approx(2.0)
    assert stats.ci95 == pytest.approx(4.303 * 2.0 / math.sqrt(3.0))


def test_summarize_single_value_has_zero_spread():
    stats = summarize([5.0])
    assert (stats.mean, stats.stddev, stats.ci95) == (5.0, 0.0, 0.0)


def test_summarize_empty_raises():
    with pytest.raises(ExperimentError):
        summarize([])


def test_t_critical_tails_off_to_normal():
    assert t_critical_95(1) == pytest.approx(12.706)
    assert t_critical_95(30) == pytest.approx(2.042)
    assert t_critical_95(200) == pytest.approx(1.96)


# ---------------------------------------------------------------------------
# Cross-seed aggregation
# ---------------------------------------------------------------------------

def _replica(y_ua, table_value, metric):
    result = ExperimentResult(experiment_id="figX", description="demo")
    result.add_series(Series(label="UA", x_values=[1.0, 2.0], y_values=list(y_ua)))
    result.add_table(TableResult(title="t", columns=["v"], rows={"r": [table_value]}))
    result.add_metric("gap", metric)
    return result


def test_aggregate_mean_and_ci_per_point():
    merged = aggregate_experiment_results([
        _replica([10.0, 1.0], 4.0, 0.1),
        _replica([14.0, 3.0], 8.0, 0.3),
    ])
    series = merged.get_series("UA")
    assert series.y_values == pytest.approx([12.0, 2.0])
    # n=2: ci95 = 12.706 * stddev / sqrt(2); stddev = |a-b| / sqrt(2).
    assert series.y_errors == pytest.approx(
        [12.706 * (abs(10.0 - 14.0) / math.sqrt(2.0)) / math.sqrt(2.0),
         12.706 * (abs(1.0 - 3.0) / math.sqrt(2.0)) / math.sqrt(2.0)])
    mean_table, ci_table = merged.tables
    assert mean_table.cell("r", "v") == pytest.approx(6.0)
    assert ci_table.title == "t ±ci95"
    assert merged.metrics["gap"] == pytest.approx(0.2)
    assert "gap__ci95" in merged.metrics


def test_aggregate_single_replica_keeps_values_with_zero_ci():
    merged = aggregate_experiment_results([_replica([10.0, 1.0], 4.0, 0.1)])
    assert merged.get_series("UA").y_values == [10.0, 1.0]
    assert merged.get_series("UA").y_errors == [0.0, 0.0]
    assert len(merged.tables) == 1  # no ±ci95 companion for n=1
    assert "gap__ci95" not in merged.metrics


def test_aggregate_rejects_misaligned_replicas():
    good = _replica([10.0, 1.0], 4.0, 0.1)
    other_x = _replica([10.0, 1.0], 4.0, 0.1)
    other_x.get_series("UA").x_values = [1.0, 3.0]
    with pytest.raises(ExperimentError, match="x-values"):
        aggregate_experiment_results([good, other_x])
    other_id = _replica([10.0, 1.0], 4.0, 0.1)
    other_id.experiment_id = "figY"
    with pytest.raises(ExperimentError, match="cannot aggregate"):
        aggregate_experiment_results([good, other_id])
    with pytest.raises(ExperimentError):
        aggregate_experiment_results([])
