"""Observer notifications, worker telemetry carry-back and ProgressReporter."""

from __future__ import annotations

from repro.campaign.cache import ResultCache
from repro.campaign.runner import CampaignJob, CampaignRunner, JobOutcome
from repro.obs.progress import ProgressReporter, _format_eta, _format_rate
from repro.sim.telemetry import TELEMETRY

#: Tiny fig07 sweep (same as test_runner_cache_cli) — fast real jobs.
TINY = {"rates_mbps": (0.65,), "sizes_kb": (2, 3), "duration": 1.5}


class RecordingObserver:
    """Captures every observer callback the runner fires, in order."""

    def __init__(self) -> None:
        self.calls = []

    def batch_started(self, batch) -> None:
        self.calls.append(("batch_started", len(batch)))

    def job_started(self, job) -> None:
        self.calls.append(("job_started", job.describe()))

    def job_finished(self, outcome) -> None:
        self.calls.append(("job_finished", outcome.job.describe(),
                           outcome.status, outcome.events))


class PartialObserver:
    """Only implements one callback; the runner must skip the others."""

    def __init__(self) -> None:
        self.finished = []

    def job_finished(self, outcome) -> None:
        self.finished.append(outcome.status)


# ---------------------------------------------------------------------------
# Runner → observer notifications
# ---------------------------------------------------------------------------

def test_inline_runner_notifies_and_carries_telemetry():
    observer = RecordingObserver()
    runner = CampaignRunner(jobs=1, observer=observer)
    outcome = runner.run_campaign("fig07", seeds=[1], overrides=TINY)
    assert observer.calls[0] == ("batch_started", 1)
    assert observer.calls[1] == ("job_started", "fig07[seed=1]")
    kind, describe, status, events = observer.calls[2]
    assert (kind, describe, status) == ("job_finished", "fig07[seed=1]", "ran")
    assert events > 0
    assert outcome.outcomes[0].events == events
    assert outcome.outcomes[0].sim_seconds > 0.0


def test_pool_runner_carries_worker_telemetry_back():
    before = TELEMETRY.snapshot()
    runner = CampaignRunner(jobs=2)
    outcome = runner.run_campaign("fig07", seeds=[1, 2], overrides=TINY)
    after = TELEMETRY.snapshot()
    # Each pooled job measured its own worker-process telemetry...
    assert all(o.events > 0 and o.sim_seconds > 0.0 for o in outcome.outcomes)
    # ...and the parent credited those remote events to its own accumulator.
    assert after[0] - before[0] >= sum(o.events for o in outcome.outcomes)


def test_cached_jobs_notify_with_zero_telemetry(tmp_path):
    cache = ResultCache(str(tmp_path / "cache"))
    CampaignRunner(jobs=1, cache=cache).run_campaign("fig07", seeds=[1],
                                                     overrides=TINY)
    observer = RecordingObserver()
    runner = CampaignRunner(jobs=1, cache=cache, observer=observer)
    runner.run_campaign("fig07", seeds=[1], overrides=TINY)
    assert ("job_finished", "fig07[seed=1]", "cached", 0) in observer.calls
    # Cached jobs never start executing.
    assert not any(call[0] == "job_started" for call in observer.calls)


def test_deduped_jobs_notify(tmp_path):
    observer = RecordingObserver()
    runner = CampaignRunner(jobs=1, observer=observer)
    job = CampaignJob("fig07", TINY, seed=1)
    outcomes = runner.run_jobs([job, job])
    assert [o.status for o in outcomes] == ["ran", "deduped"]
    statuses = [call[2] for call in observer.calls
                if call[0] == "job_finished"]
    assert statuses == ["ran", "deduped"]


def test_partial_observer_is_tolerated():
    observer = PartialObserver()
    runner = CampaignRunner(jobs=1, observer=observer)
    runner.run_campaign("fig07", seeds=[1], overrides=TINY)
    assert observer.finished == ["ran"]


# ---------------------------------------------------------------------------
# ProgressReporter
# ---------------------------------------------------------------------------

def _outcome(status="ran", elapsed=2.0, events=10_000, sim_seconds=4.0,
             error=""):
    return JobOutcome(job=CampaignJob("fig07", TINY, seed=1), status=status,
                      elapsed=elapsed, events=events, sim_seconds=sim_seconds,
                      error=error)


def _reporter(workers=1):
    lines = []
    clock = iter(float(i) for i in range(100))
    return ProgressReporter(emit=lines.append, workers=workers,
                            clock=lambda: next(clock)), lines


def test_reporter_lines_and_counts():
    reporter, lines = _reporter()
    reporter.batch_started([1, 2, 3])
    reporter.job_started(CampaignJob("fig07", TINY, seed=1))
    reporter.job_finished(_outcome())
    assert lines[0] == "running 3 job(s) on 1 worker(s)"
    assert lines[1] == "[0/3] fig07[seed=1]: started"
    assert lines[2].startswith("[1/3] fig07[seed=1]: ran in 2.00s "
                               "(10,000 events, 5k ev/s)")
    assert "| ETA" in lines[2]
    assert reporter.done == 1 and reporter.total == 3
    assert reporter.events == 10_000


def test_reporter_eta_excludes_cached_jobs_and_divides_by_workers():
    reporter, _ = _reporter(workers=2)
    reporter.batch_started([1, 2, 3, 4])
    reporter.job_finished(_outcome(status="cached", elapsed=0.0, events=0))
    assert reporter.eta_seconds() is None  # no "ran" sample yet
    reporter.job_finished(_outcome(elapsed=4.0))
    # 2 remaining x 4.0s mean / 2 workers
    assert reporter.eta_seconds() == 4.0


def test_reporter_error_line_shows_last_error_line():
    reporter, lines = _reporter()
    reporter.batch_started([1])
    reporter.job_finished(_outcome(status="error", events=0,
                                   error="Traceback...\nBoom: bad rate"))
    assert lines[-1] == "[1/1] fig07[seed=1]: error (Boom: bad rate)"


def test_reporter_summary_line_mixes_statuses():
    reporter, _ = _reporter()
    reporter.batch_started([1, 2, 3])
    reporter.job_finished(_outcome())
    reporter.job_finished(_outcome(status="cached", elapsed=0.0, events=0))
    reporter.job_finished(_outcome())
    summary = reporter.summary_line()
    assert summary.startswith("3/3 job(s): 1 cached, 2 ran")
    assert "20,000 events / 8.0 sim-s" in summary


def test_format_helpers():
    assert _format_rate(0, 1.0) == ""
    assert _format_rate(500, 1.0) == "500 ev/s"
    assert _format_rate(5_000, 1.0) == "5k ev/s"
    assert _format_rate(2_000_000, 1.0) == "2.0M ev/s"
    assert _format_eta(30.0) == "30s"
    assert _format_eta(90.0) == "1.5m"
    assert _format_eta(7200.0) == "2.0h"
