"""Cache behavior, campaign execution (inline and multiprocess) and the CLI.

The real fig07 runner is used throughout with a tiny override sweep so these
tests exercise the genuine registry → runner → cache → aggregate path while
staying fast.
"""

from __future__ import annotations

import json
import multiprocessing
import shutil

import pytest

from repro.campaign.cache import ResultCache, job_key
from repro.campaign.cli import main
from repro.campaign.runner import CampaignJob, CampaignRunner
from repro.errors import ExperimentError
from repro.stats.results import ExperimentResult, Series

#: Tiny fig07 sweep: 2 sizes x 1 rate x 1.5 simulated seconds per job.
TINY = {"rates_mbps": (0.65,), "sizes_kb": (2, 3), "duration": 1.5}


# ---------------------------------------------------------------------------
# Cache
# ---------------------------------------------------------------------------

def _result_dict(value):
    result = ExperimentResult(experiment_id="figX", description="demo")
    result.add_series(Series(label="UA", x_values=[1.0], y_values=[value]))
    return result.to_dict()


def test_cache_miss_then_hit(tmp_path):
    cache = ResultCache(str(tmp_path / "cache"))
    params = {"duration": 1.5, "rates_mbps": (0.65,)}
    assert cache.get("figX", params, 1) is None
    cache.put("figX", params, 1, _result_dict(0.5))
    assert cache.get("figX", params, 1) == _result_dict(0.5)
    assert (cache.hits, cache.misses) == (1, 1)


def test_cache_key_distinguishes_all_coordinates():
    params = {"duration": 1.5}
    base = job_key("figX", params, 1)
    assert job_key("figX", params, 2) != base
    assert job_key("figY", params, 1) != base
    assert job_key("figX", {"duration": 2.0}, 1) != base


def test_cache_key_canonicalizes_tuples_and_key_order():
    assert (job_key("figX", {"a": (1, 2), "b": 3.0}, 1)
            == job_key("figX", {"b": 3.0, "a": [1, 2]}, 1))


def test_cache_preserves_series_and_row_order(tmp_path):
    cache = ResultCache(str(tmp_path))
    result = ExperimentResult(experiment_id="figX", description="demo")
    for label in ("NA", "UA", "BA"):  # deliberately not alphabetical
        result.add_series(Series(label=label, x_values=[1.0], y_values=[0.5]))
    params = {"duration": 1.5}
    cache.put("figX", params, 1, result.to_dict())
    cached = ExperimentResult.from_dict(cache.get("figX", params, 1))
    assert list(cached.series) == ["NA", "UA", "BA"]


def test_cache_ignores_corrupt_entries(tmp_path):
    cache = ResultCache(str(tmp_path))
    params = {"duration": 1.5}
    path = cache.put("figX", params, 1, _result_dict(0.5))
    for corrupt in ("{not json", '{"valid_json": "but no result key"}'):
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(corrupt)
        assert cache.get("figX", params, 1) is None


def test_cache_rejects_colliding_entry_with_wrong_coordinates(tmp_path):
    """A filename collision must read as a miss, not serve another job's data.

    File names embed only 16 hex characters of the job key, so two distinct
    jobs can map to the same path.  Regression: ``get`` used to trust the
    path alone and return whatever entry sat there.  Forge a collision by
    writing job A's entry at job B's path and check B misses while a
    coordinate-faithful entry still hits.
    """
    cache = ResultCache(str(tmp_path))
    params_a = {"duration": 1.5}
    params_b = {"duration": 99.0}
    path_a = cache.put("figX", params_a, 1, _result_dict(0.5))
    path_b = cache._path("figX", 1, job_key("figX", params_b, 1))
    shutil.copyfile(path_a, path_b)  # the forged collision
    assert cache.get("figX", params_b, 1) is None
    assert cache.get("figX", params_a, 1) == _result_dict(0.5)


def test_cache_verification_survives_tuple_list_round_trip(tmp_path):
    """Tuples in params come back as JSON lists; that must still verify as a hit."""
    cache = ResultCache(str(tmp_path))
    params = {"rates_mbps": (0.65, 1.3), "duration": 1.5}
    cache.put("figX", params, 3, _result_dict(0.7))
    assert cache.get("figX", params, 3) == _result_dict(0.7)
    assert cache.get("figX", {"rates_mbps": [0.65, 1.3], "duration": 1.5}, 3) \
        == _result_dict(0.7)


# ---------------------------------------------------------------------------
# Campaign runner
# ---------------------------------------------------------------------------

def test_campaign_inline_then_cached(tmp_path):
    cache = ResultCache(str(tmp_path / "cache"))
    runner = CampaignRunner(jobs=1, cache=cache)
    first = runner.run_campaign("fig07", seeds=[1, 2], overrides=TINY)
    assert [o.status for o in first.outcomes] == ["ran", "ran"]
    series = first.aggregate.get_series("0.65 Mbps")
    assert len(series.y_values) == len(series.y_errors) == 2

    second = runner.run_campaign("fig07", seeds=[1, 2], overrides=TINY)
    assert [o.status for o in second.outcomes] == ["cached", "cached"]
    assert second.aggregate.to_dict() == first.aggregate.to_dict()

    # A new seed is incremental: two hits, one fresh execution.
    third = runner.run_campaign("fig07", seeds=[1, 2, 3], overrides=TINY)
    assert sorted(o.status for o in third.outcomes) == ["cached", "cached", "ran"]


def test_campaign_multiprocess_matches_inline(tmp_path):
    inline = CampaignRunner(jobs=1).run_campaign("fig07", seeds=[1, 2], overrides=TINY)
    pooled = CampaignRunner(jobs=2).run_campaign("fig07", seeds=[1, 2], overrides=TINY)
    # Cross-process determinism: a worker must reproduce the in-process run
    # byte for byte, or the cache and the CI smoke test are meaningless.
    assert pooled.replicas[1].to_dict() == inline.replicas[1].to_dict()
    assert pooled.aggregate.to_dict() == inline.aggregate.to_dict()


def test_campaign_failure_reporting():
    # duration <= warmup makes run_udp_saturation raise inside every job.
    runner = CampaignRunner(jobs=1)
    with pytest.raises(ExperimentError, match="every job"):
        runner.run_campaign("table02", seeds=[1],
                            overrides={"rates_mbps": (0.65,), "duration": 0.5})


@pytest.mark.skipif(multiprocessing.get_start_method() != "fork",
                    reason="monkeypatch reaches pool workers only under fork")
def test_pool_distinguishes_job_raised_timeouterror(monkeypatch):
    # concurrent.futures.TimeoutError aliases builtin TimeoutError on 3.11+;
    # a job raising it must be recorded as an "error", not a pool timeout.
    def boom(experiment_id, params, seed):
        raise TimeoutError("raised inside the job")

    monkeypatch.setattr("repro.campaign.runner.execute_job", boom)
    runner = CampaignRunner(jobs=2, timeout=60.0)
    outcomes = runner.run_jobs([CampaignJob("fig07", dict(TINY), 1)])
    assert outcomes[0].status == "error"
    assert "raised inside the job" in outcomes[0].error


def test_run_jobs_preserves_batch_order(tmp_path):
    cache = ResultCache(str(tmp_path / "cache"))
    runner = CampaignRunner(jobs=1, cache=cache)
    params = CampaignJob("fig07", dict(TINY), 1).params
    batch = [CampaignJob("fig07", params, seed) for seed in (2, 1)]
    outcomes = runner.run_jobs(batch)
    assert [o.job.seed for o in outcomes] == [2, 1]
    assert [o.status for o in outcomes] == ["ran", "ran"]
    # A follow-up batch overlapping the first is served incrementally.
    rerun = runner.run_jobs(batch + [CampaignJob("fig07", params, 3)])
    assert [o.status for o in rerun] == ["cached", "cached", "ran"]


def test_runner_validates_inputs():
    with pytest.raises(ExperimentError):
        CampaignRunner(jobs=0)
    with pytest.raises(ExperimentError):
        CampaignRunner().run_campaign("fig07", seeds=[])


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def test_cli_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig09" in out and "table08" in out


def test_cli_run_and_report_roundtrip(tmp_path, capsys):
    out_path = tmp_path / "fig07.json"
    argv = ["run", "fig07", "--seeds", "2", "--jobs", "1",
            "--set", "rates_mbps=(0.65,)", "--set", "sizes_kb=(2, 3)",
            "--set", "duration=1.5",
            "--cache-dir", str(tmp_path / "cache"), "--out", str(out_path)]
    assert main(argv) == 0
    first = capsys.readouterr().out
    assert "0 hit(s), 2 miss(es)" in first

    # Second invocation is served entirely from the cache.
    assert main(argv) == 0
    second = capsys.readouterr().out
    assert "2 hit(s), 0 miss(es)" in second

    payload = json.loads(out_path.read_text())
    series = payload["aggregate"]["series"]["0.65 Mbps"]
    assert len(series["y_values"]) == len(series["y_errors"]) == 2
    assert payload["job_stats"] == {"ran": 0, "cached": 2, "deduped": 0, "failed": 0}

    assert main(["report", str(out_path), "--replicas"]) == 0
    report = capsys.readouterr().out
    assert "replica seed=2" in report


def test_cli_unknown_experiment_exits_nonzero(capsys):
    assert main(["run", "fig99", "--seeds", "1"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_cli_report_unreadable_file_exits_cleanly(tmp_path, capsys):
    assert main(["report", str(tmp_path / "nope.json")]) == 2
    assert "cannot read results file" in capsys.readouterr().err
    bad = tmp_path / "bad.json"
    for content in ("{broken", "[1, 2, 3]", '{"experiment_id": "x", "aggregate": null}'):
        bad.write_text(content)
        assert main(["report", str(bad)]) == 2
        assert "cannot read results file" in capsys.readouterr().err


def test_cli_report_flags_missing_replicas(tmp_path, capsys):
    result = ExperimentResult(experiment_id="figX", description="demo")
    result.add_series(Series(label="UA", x_values=[1.0], y_values=[0.5]))
    payload = {
        "experiment_id": "figX", "params": {}, "seeds": [1, 2, 3],
        "aggregate": result.to_dict(), "replicas": {"1": result.to_dict(),
                                                    "2": result.to_dict()},
        "job_stats": {"ran": 2, "cached": 0, "failed": 1},
    }
    path = tmp_path / "partial.json"
    path.write_text(json.dumps(payload))
    assert main(["report", str(path)]) == 0
    out = capsys.readouterr().out
    assert "WARNING: 1 job(s) failed" in out and "seed(s) [3]" in out
