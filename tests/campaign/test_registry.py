"""Registry completeness and parameter-schema tests."""

from __future__ import annotations

import importlib
import pkgutil

import pytest

import repro.experiments
from repro.campaign.registry import discover, get_registry
from repro.errors import ExperimentError

EXPECTED_IDS = {
    "fig07", "fig08", "fig09", "fig10", "fig11", "fig12", "fig13", "fig14",
    "table02", "table03", "table04", "table05_07", "table08",
    # Mobile-scenario experiments (beyond the paper's stationary setup).
    "mob01", "mob02",
    # Dynamic-routing experiments (DSDV control plane, PR 4).
    "mob03", "mob04", "rt01", "rt02",
    # City-scale experiments (spatially indexed medium, PR 10).
    "city01",
}


def test_every_experiment_runner_is_registered():
    """Each repro.experiments module with a run() must carry a registry hook."""
    registry = get_registry()
    for info in pkgutil.iter_modules(repro.experiments.__path__):
        module = importlib.import_module(f"repro.experiments.{info.name}")
        if hasattr(module, "run"):
            assert hasattr(module, "EXPERIMENT_ID"), (
                f"{module.__name__} exposes run() but has no EXPERIMENT_ID hook")
            assert module.EXPERIMENT_ID in registry


def test_registry_ids_match_the_paper():
    registry = get_registry()
    assert set(registry.experiment_ids()) == EXPECTED_IDS
    assert len(registry) == len(EXPECTED_IDS)


def test_every_spec_accepts_a_seed_and_has_fast_params():
    registry = get_registry()
    for experiment_id in registry.experiment_ids():
        spec = registry.get(experiment_id)
        assert "seed" in spec.parameter_names, experiment_id
        assert spec.fast_params, f"{experiment_id} has no reduced sweep"
        assert spec.description
        # Every FAST_PARAMS key must name a real run() parameter.
        unknown = set(spec.fast_params) - set(spec.parameter_names)
        assert not unknown, f"{experiment_id}: bogus fast params {unknown}"


def test_resolve_params_layers_defaults_fast_and_overrides():
    spec = get_registry().get("fig09")
    fast = spec.resolve_params()
    assert fast["flooding_intervals"] == (0.5, 2.0)  # FAST_PARAMS won
    assert "seed" not in fast  # the runner supplies seeds per job
    full = spec.resolve_params(fast=False)
    assert full["flooding_intervals"] == (0.25, 0.5, 1.0, 2.0, 5.0)
    overridden = spec.resolve_params({"duration": 2.5})
    assert overridden["duration"] == 2.5


def test_resolve_params_rejects_unknown_names():
    spec = get_registry().get("fig09")
    with pytest.raises(ExperimentError, match="unknown parameter"):
        spec.resolve_params({"floodng_intervals": (1.0,)})


def test_resolve_params_rejects_seed_override():
    spec = get_registry().get("fig09")
    with pytest.raises(ExperimentError, match="seed"):
        spec.resolve_params({"seed": 42})


def test_unknown_experiment_id_raises():
    with pytest.raises(ExperimentError, match="unknown experiment"):
        get_registry().get("fig99")


def test_discover_builds_a_fresh_registry():
    assert set(discover().experiment_ids()) == EXPECTED_IDS
