"""Unit tests for the Hydra rate table."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.phy.rates import (
    HYDRA_BASE_RATE,
    HYDRA_SISO_RATES,
    RateTable,
    hydra_rate_table,
    required_snr_db,
)


def test_hydra_siso_rates_match_table1_of_paper():
    expected = [0.65, 1.30, 1.95, 2.60, 3.90, 5.20, 5.85, 6.50]
    assert [round(r.data_rate_mbps, 2) for r in HYDRA_SISO_RATES] == expected


def test_base_rate_is_bpsk_half():
    assert HYDRA_BASE_RATE.data_rate_mbps == pytest.approx(0.65)
    assert HYDRA_BASE_RATE.modulation.label == "BPSK"
    assert str(HYDRA_BASE_RATE.coding) == "1/2"


def test_transmission_time():
    rate = hydra_rate_table().by_mbps(1.3)
    assert rate.transmission_time(1300) == pytest.approx(1300 * 8 / 1.3e6)
    assert rate.bits_in_time(1.0) == pytest.approx(1.3e6)


def test_rate_table_lookup_by_name_and_mbps():
    table = hydra_rate_table()
    assert table.by_name("MCS2").data_rate_mbps == pytest.approx(1.95)
    assert table.by_mbps(2.6).name == "MCS3"
    with pytest.raises(ConfigurationError):
        table.by_name("MCS9")
    with pytest.raises(ConfigurationError):
        table.by_mbps(7.0)


def test_rate_table_ordering_and_neighbours():
    table = hydra_rate_table()
    assert table.base_rate.name == "MCS0"
    assert table.max_rate.name == "MCS7"
    mcs3 = table.by_name("MCS3")
    assert table.next_higher(mcs3).name == "MCS4"
    assert table.next_lower(mcs3).name == "MCS2"
    assert table.next_lower(table.base_rate) is table.base_rate
    assert table.next_higher(table.max_rate) is table.max_rate


def test_mimo_multiplier_scales_rates():
    table2 = hydra_rate_table(mimo_multiplier=2)
    assert table2.base_rate.data_rate_mbps == pytest.approx(1.3)
    assert table2.max_rate.data_rate_mbps == pytest.approx(13.0)
    assert table2.base_rate.spatial_streams == 2
    with pytest.raises(ConfigurationError):
        hydra_rate_table(mimo_multiplier=5)


def test_required_snr_monotone_in_rate():
    table = hydra_rate_table()
    thresholds = [required_snr_db(rate) for rate in table]
    assert thresholds == sorted(thresholds)


def test_empty_rate_table_rejected():
    with pytest.raises(ConfigurationError):
        RateTable([])
