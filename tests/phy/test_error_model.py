"""Unit tests for the subframe error model."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.phy.error_model import ErrorModel, ErrorModelConfig
from repro.phy.rates import hydra_rate_table

RATES = hydra_rate_table()
PAPER_SNR_DB = 25.0


def test_experiment_rates_are_reliable_at_paper_snr():
    """The four rates used in the paper's experiments are essentially error free at 25 dB."""
    model = ErrorModel()
    for mbps in (0.65, 1.3, 1.95, 2.6):
        per = model.subframe_error_probability(PAPER_SNR_DB, RATES.by_mbps(mbps), 1464)
        assert per < 1e-3


def test_64qam_rates_unreliable_at_paper_snr():
    """Section 5: the SNR 'did not allow reliable operation of the rates that required 64-QAM'."""
    model = ErrorModel()
    for mbps in (5.2, 5.85, 6.5):
        per = model.subframe_error_probability(PAPER_SNR_DB, RATES.by_mbps(mbps), 1464)
        assert per > 0.5


def test_noise_error_probability_increases_with_size():
    model = ErrorModel()
    rate = RATES.by_mbps(3.9)
    small = model.noise_error_probability(18.0, rate, 100)
    large = model.noise_error_probability(18.0, rate, 10_000)
    assert large > small


def test_zero_size_never_errors():
    model = ErrorModel()
    assert model.noise_error_probability(0.0, RATES.base_rate, 0) == 0.0


def test_aging_zero_within_coherence():
    model = ErrorModel(ErrorModelConfig(coherence_samples=120_000))
    assert model.aging_error_probability(0) == 0.0
    assert model.aging_error_probability(119_999) == 0.0


def test_aging_rises_steeply_beyond_coherence():
    model = ErrorModel(ErrorModelConfig(coherence_samples=120_000, aging_scale_fraction=0.05))
    just_over = model.aging_error_probability(121_000)
    far_over = model.aging_error_probability(140_000)
    assert 0.0 < just_over < far_over
    assert far_over > 0.9


def test_combined_probability_combines_independently():
    model = ErrorModel()
    rate = RATES.by_mbps(3.9)
    p_noise = model.noise_error_probability(15.0, rate, 1464)
    p_aging = model.aging_error_probability(130_000)
    combined = model.subframe_error_probability(15.0, rate, 1464, 130_000)
    assert combined == pytest.approx(1 - (1 - p_noise) * (1 - p_aging))


def test_subframe_survives_is_deterministic_at_extremes():
    model = ErrorModel()
    rng = random.Random(0)
    # Essentially error-free conditions.
    assert model.subframe_survives(rng, 30.0, RATES.base_rate, 100)
    # Hopeless conditions (very low SNR, far beyond coherence).
    assert not model.subframe_survives(rng, -10.0, RATES.max_rate, 1464, 500_000)


def test_control_frame_survives_at_base_rate():
    model = ErrorModel()
    rng = random.Random(1)
    assert model.control_frame_survives(rng, PAPER_SNR_DB, RATES.base_rate, 14)


def test_sampling_frequency_matches_probability():
    model = ErrorModel()
    rate = RATES.by_mbps(5.2)
    p = model.subframe_error_probability(PAPER_SNR_DB, rate, 1464)
    rng = random.Random(7)
    trials = 2000
    failures = sum(
        0 if model.subframe_survives(rng, PAPER_SNR_DB, rate, 1464) else 1 for _ in range(trials)
    )
    assert failures / trials == pytest.approx(p, abs=0.05)


def test_invalid_config_rejected():
    with pytest.raises(ConfigurationError):
        ErrorModelConfig(coherence_samples=0)
    with pytest.raises(ConfigurationError):
        ErrorModelConfig(aging_scale_fraction=0)


@given(
    snr=st.floats(min_value=-10, max_value=40),
    size=st.integers(min_value=0, max_value=20_000),
    offset=st.floats(min_value=0, max_value=1e6),
    rate_index=st.integers(min_value=0, max_value=7),
)
def test_probabilities_always_in_unit_interval(snr, size, offset, rate_index):
    model = ErrorModel()
    rate = list(RATES)[rate_index]
    p = model.subframe_error_probability(snr, rate, size, offset)
    assert 0.0 <= p <= 1.0
