"""Integration tests for the PHY device and the shared wireless channel."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import pytest

from repro.channel import LogDistancePathLoss, WirelessChannel
from repro.errors import ConfigurationError, PhyError
from repro.phy import FrameKind, Phy, PhyConfig, PhyFrame, PhyState, ReceptionResult
from repro.phy.rates import hydra_rate_table
from repro.sim import Simulator

RATES = hydra_rate_table()
RATE_065 = RATES.by_mbps(0.65)
RATE_26 = RATES.by_mbps(2.6)


@dataclass
class StubSubframe:
    size_bytes: int


@dataclass
class RecordingListener:
    """Collects PHY callbacks for assertions."""

    received: List[ReceptionResult] = field(default_factory=list)
    tx_complete: List[PhyFrame] = field(default_factory=list)
    busy_transitions: List[str] = field(default_factory=list)

    def on_carrier_busy(self):
        self.busy_transitions.append("busy")

    def on_carrier_idle(self):
        self.busy_transitions.append("idle")

    def on_frame_received(self, result):
        self.received.append(result)

    def on_transmit_complete(self, frame):
        self.tx_complete.append(frame)


def build_pair(sim, spacing=2.5):
    channel = WirelessChannel(sim)
    tx = Phy(sim, channel, position=(0.0, 0.0), name="tx")
    rx = Phy(sim, channel, position=(spacing, 0.0), name="rx")
    tx_listener, rx_listener = RecordingListener(), RecordingListener()
    tx.attach_listener(tx_listener)
    rx.attach_listener(rx_listener)
    return channel, tx, rx, tx_listener, rx_listener


def data_frame(n_unicast=1, size=1464, rate=RATE_065, n_broadcast=0, bcast_size=160,
               bcast_rate=None):
    return PhyFrame.data(
        [StubSubframe(bcast_size) for _ in range(n_broadcast)],
        [StubSubframe(size) for _ in range(n_unicast)],
        unicast_rate=rate,
        broadcast_rate=bcast_rate,
    )


def test_link_snr_matches_paper_operating_point():
    sim = Simulator(seed=1)
    channel, tx, rx, *_ = build_pair(sim, spacing=2.5)
    assert channel.link_snr_db(tx, rx) == pytest.approx(25.0, abs=1.0)


def test_successful_unicast_delivery():
    sim = Simulator(seed=2)
    channel, tx, rx, tx_l, rx_l = build_pair(sim)
    frame = data_frame()
    duration = tx.send(frame)
    assert duration > 0
    assert tx.state is PhyState.TRANSMITTING
    sim.run()
    assert tx_l.tx_complete == [frame]
    assert len(rx_l.received) == 1
    result = rx_l.received[0]
    assert result.all_unicast_ok
    assert not result.collided
    assert result.snr_db == pytest.approx(25.0, abs=1.5)


def test_broadcast_and_unicast_portions_both_decoded():
    sim = Simulator(seed=3)
    _, tx, rx, _, rx_l = build_pair(sim)
    frame = data_frame(n_unicast=2, n_broadcast=3, bcast_rate=RATE_065, rate=RATE_26)
    tx.send(frame)
    sim.run()
    result = rx_l.received[0]
    assert result.broadcast_ok == [True, True, True]
    assert result.unicast_ok == [True, True]


def test_cannot_send_while_transmitting():
    sim = Simulator(seed=4)
    _, tx, _, _, _ = build_pair(sim)
    tx.send(data_frame())
    with pytest.raises(PhyError):
        tx.send(data_frame())


def test_carrier_sense_transitions_at_receiver():
    sim = Simulator(seed=5)
    _, tx, rx, _, rx_l = build_pair(sim)
    tx.send(data_frame())
    sim.run()
    assert rx_l.busy_transitions == ["busy", "idle"]
    assert not rx.carrier_busy


def test_overlapping_transmissions_collide():
    sim = Simulator(seed=6)
    channel = WirelessChannel(sim)
    a = Phy(sim, channel, position=(0.0, 0.0), name="a")
    b = Phy(sim, channel, position=(5.0, 0.0), name="b")
    victim = Phy(sim, channel, position=(2.5, 0.0), name="victim")
    listener = RecordingListener()
    victim.attach_listener(listener)
    # Both neighbours transmit at the same instant: equal power at the victim.
    sim.schedule(0.0, a.send, data_frame())
    sim.schedule(0.0, b.send, data_frame())
    sim.run()
    assert len(listener.received) == 2
    assert all(r.collided for r in listener.received)
    assert all(not r.all_unicast_ok for r in listener.received)
    assert victim.frames_collided == 2


def test_reception_lost_if_receiver_is_transmitting():
    sim = Simulator(seed=7)
    channel, tx, rx, _, rx_l = build_pair(sim)
    # rx starts its own (long) transmission just before tx's frame arrives.
    sim.schedule(0.0, rx.send, data_frame(size=4000))
    sim.schedule(0.001, tx.send, data_frame())
    sim.run()
    assert all(r.collided for r in rx_l.received)


def test_control_frame_reception():
    sim = Simulator(seed=8)
    _, tx, rx, _, rx_l = build_pair(sim)
    ack = PhyFrame.control_frame(FrameKind.ACK, StubSubframe(14), RATE_065)
    tx.send(ack)
    sim.run()
    assert len(rx_l.received) == 1
    assert rx_l.received[0].control_ok
    assert rx_l.received[0].frame.kind is FrameKind.ACK


def test_distant_node_does_not_decode_but_cs_threshold_applies():
    sim = Simulator(seed=9)
    channel = WirelessChannel(sim)
    tx = Phy(sim, channel, position=(0.0, 0.0), name="tx")
    # Far node: below reception threshold but possibly above carrier sense.
    far = Phy(sim, channel, position=(400.0, 0.0), name="far")
    far_listener = RecordingListener()
    far.attach_listener(far_listener)
    tx.send(data_frame())
    sim.run()
    # Nothing decodable should have been delivered as OK.
    assert all(not r.any_ok for r in far_listener.received) or far_listener.received == []


def test_channel_statistics_and_registration():
    sim = Simulator(seed=10)
    channel, tx, rx, *_ = build_pair(sim)
    assert len(channel.phys) == 2
    tx.send(data_frame())
    assert channel.busy
    sim.run()
    assert not channel.busy
    assert channel.total_transmissions == 1
    assert channel.total_airtime > 0
    channel.unregister(rx)
    assert len(channel.phys) == 1


def test_unregistered_phy_cannot_transmit():
    sim = Simulator(seed=11)
    channel = WirelessChannel(sim)
    other_channel = WirelessChannel(sim)
    phy = Phy(sim, other_channel, name="elsewhere")
    with pytest.raises(ConfigurationError):
        channel.broadcast(phy, data_frame(), 0.01, 8.9)


def test_unregister_mid_flight_stops_delivery():
    """A PHY detached while a frame is in flight must never hear its tail.

    Regression: unregister() used to leave the already-scheduled begin/end
    reception events pending, so the detached PHY finished decoding frames on
    a medium it was no longer attached to.
    """
    sim = Simulator(seed=20)
    channel, tx, rx, _, rx_l = build_pair(sim)
    duration = tx.send(data_frame())
    # Past the propagation delay: begin_reception has fired, end is pending.
    sim.run(until=duration / 2)
    assert rx.state is PhyState.RECEIVING
    channel.unregister(rx)
    assert rx.state is PhyState.IDLE
    assert not rx.carrier_busy
    sim.run()
    assert rx_l.received == []
    assert rx.frames_received == 0
    # The medium itself still retires the transmission normally.
    assert not channel.busy
    assert channel.total_transmissions == 1


def test_unregister_before_arrival_cancels_both_delivery_events():
    sim = Simulator(seed=21)
    channel, tx, rx, _, rx_l = build_pair(sim)
    tx.send(data_frame())
    # Not run yet: even begin_reception is still pending.
    channel.unregister(rx)
    sim.run()
    assert rx_l.received == []
    assert rx.frames_received == 0
    assert rx.state is PhyState.IDLE


def test_unregister_leaves_other_receivers_untouched():
    sim = Simulator(seed=22)
    channel = WirelessChannel(sim)
    tx = Phy(sim, channel, position=(0.0, 0.0), name="tx")
    leaver = Phy(sim, channel, position=(2.5, 0.0), name="leaver")
    stayer = Phy(sim, channel, position=(0.0, 2.5), name="stayer")
    stayer_l = RecordingListener()
    stayer.attach_listener(stayer_l)
    duration = tx.send(data_frame())
    sim.run(until=duration / 2)
    channel.unregister(leaver)
    sim.run()
    assert len(stayer_l.received) == 1
    assert stayer_l.received[0].all_unicast_ok
    assert leaver.frames_received == 0


def test_link_budget_memo_matches_uncached_channel():
    """The per-link budget memo must be invisible in the numbers."""
    sim = Simulator(seed=23)
    observed = {}
    for memo in (True, False):
        channel = WirelessChannel(sim, link_budget_memo=memo)
        a = Phy(sim, channel, position=(0.0, 0.0), name="a")
        b = Phy(sim, channel, position=(2.5, 0.0), name="b")
        # Twice: the second call exercises the cache-hit path.
        first = channel.received_power_dbm(a, b, 8.9)
        assert channel.received_power_dbm(a, b, 8.9) == first
        # Moving an endpoint invalidates via the position equality check.
        b.position = (5.0, 0.0)
        moved = channel.received_power_dbm(a, b, 8.9)
        assert moved < first
        observed[memo] = (first, moved)
    assert observed[True] == observed[False]


def test_propagation_models_monotone_in_distance():
    log_model = LogDistancePathLoss()
    near = log_model.path_loss_db((0, 0), (1, 0))
    far = log_model.path_loss_db((0, 0), (10, 0))
    assert far > near


def test_aging_kills_tail_subframes_of_oversized_aggregates():
    """An aggregate far beyond the 120 Ksample ceiling loses its tail subframes."""
    sim = Simulator(seed=12)
    _, tx, rx, _, rx_l = build_pair(sim)
    # 8 KB of unicast at 0.65 Mbps is ~190 Ksamples: the last subframes must fail.
    frame = data_frame(n_unicast=6, size=1464, rate=RATE_065)
    tx.send(frame)
    sim.run()
    result = rx_l.received[0]
    assert result.unicast_ok[0] is True
    assert result.unicast_ok[-1] is False
    assert not result.all_unicast_ok
