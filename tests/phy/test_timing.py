"""Unit tests for PHY airtime and sample accounting."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.phy.rates import hydra_rate_table
from repro.phy.timing import PhyTimingConfig
from repro.units import microseconds

RATES = hydra_rate_table()


def test_payload_airtime_matches_rate_arithmetic():
    timing = PhyTimingConfig()
    rate = RATES.by_mbps(0.65)
    assert timing.payload_airtime(1464, rate) == pytest.approx(1464 * 8 / 0.65e6)


def test_frame_airtime_sums_portions_and_preamble():
    timing = PhyTimingConfig(preamble_duration=microseconds(240))
    bcast = RATES.by_mbps(0.65)
    ucast = RATES.by_mbps(2.6)
    airtime = timing.frame_airtime(160, bcast, 1464, ucast)
    expected = microseconds(240) + 160 * 8 / 0.65e6 + 1464 * 8 / 2.6e6
    assert airtime == pytest.approx(expected)


def test_empty_portions_do_not_add_airtime():
    timing = PhyTimingConfig()
    rate = RATES.by_mbps(1.3)
    only_preamble = timing.frame_airtime(0, rate, 0, rate)
    assert only_preamble == pytest.approx(timing.preamble_duration)


def test_control_airtime_includes_preamble():
    timing = PhyTimingConfig()
    rate = RATES.base_rate
    assert timing.control_airtime(14, rate) == pytest.approx(
        timing.preamble_duration + 14 * 8 / 0.65e6
    )


def test_paper_aggregation_thresholds_map_to_120ksamples():
    """5 KB @ 0.65, ~11 KB @ 1.3 and ~15 KB @ 1.95 all sit near 120 Ksamples (Section 6.1)."""
    timing = PhyTimingConfig()
    for rate_mbps, size_kb in [(0.65, 5), (1.3, 11), (1.95, 15)]:
        samples = timing.samples_for_bytes(size_kb * 1024, RATES.by_mbps(rate_mbps))
        assert samples == pytest.approx(120_000, rel=0.12)


def test_samples_bytes_roundtrip():
    timing = PhyTimingConfig()
    rate = RATES.by_mbps(1.95)
    samples = timing.samples_for_bytes(5000, rate)
    assert timing.bytes_for_samples(samples, rate) == pytest.approx(5000)


def test_subframe_sample_offsets_are_cumulative():
    timing = PhyTimingConfig()
    rate = RATES.by_mbps(0.65)
    offsets = timing.subframe_sample_offsets([100, 200, 300], rate)
    per_byte = timing.samples_for_bytes(1, rate)
    assert offsets == pytest.approx([100 * per_byte, 300 * per_byte, 600 * per_byte])


def test_subframe_sample_offsets_with_start_offset():
    timing = PhyTimingConfig()
    rate = RATES.by_mbps(0.65)
    offsets = timing.subframe_sample_offsets([100], rate, start_offset_samples=500.0)
    assert offsets[0] == pytest.approx(500.0 + timing.samples_for_bytes(100, rate))


def test_invalid_configuration_rejected():
    with pytest.raises(ConfigurationError):
        PhyTimingConfig(preamble_duration=-1.0)
    with pytest.raises(ConfigurationError):
        PhyTimingConfig(sample_rate=0.0)
    with pytest.raises(ConfigurationError):
        PhyTimingConfig(turnaround_time=-0.1)
    timing = PhyTimingConfig()
    with pytest.raises(ConfigurationError):
        timing.payload_airtime(-1, RATES.base_rate)


@given(
    sizes=st.lists(st.integers(min_value=0, max_value=5000), min_size=1, max_size=20),
    rate_index=st.integers(min_value=0, max_value=7),
)
def test_offsets_are_monotone_nondecreasing(sizes, rate_index):
    timing = PhyTimingConfig()
    rate = list(RATES)[rate_index]
    offsets = timing.subframe_sample_offsets(sizes, rate)
    assert all(b >= a for a, b in zip(offsets, offsets[1:]))
    assert offsets[-1] == pytest.approx(timing.samples_for_bytes(sum(sizes), rate), rel=1e-9)
