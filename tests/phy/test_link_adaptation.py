"""Unit tests for ARF and RBAR link adaptation."""

from __future__ import annotations

from repro.phy.link_adaptation import AutoRateFallback, FixedRate, ReceiverBasedAutoRate
from repro.phy.rates import hydra_rate_table

TABLE = hydra_rate_table()


def test_fixed_rate_never_changes():
    controller = FixedRate(TABLE.by_mbps(1.3))
    controller.on_failure()
    controller.on_success()
    controller.on_feedback(30.0)
    assert controller.current_rate().data_rate_mbps == 1.3
    controller.set_rate(TABLE.by_mbps(2.6))
    assert controller.current_rate().data_rate_mbps == 2.6


def test_arf_steps_up_after_consecutive_successes():
    arf = AutoRateFallback(TABLE, initial=TABLE.base_rate, success_threshold=3)
    for _ in range(3):
        arf.on_success()
    assert arf.current_rate().name == "MCS1"


def test_arf_steps_down_after_failures():
    arf = AutoRateFallback(TABLE, initial=TABLE.by_name("MCS3"), failure_threshold=2)
    arf.on_failure()
    assert arf.current_rate().name == "MCS3"
    arf.on_failure()
    assert arf.current_rate().name == "MCS2"


def test_arf_probe_failure_reverts_immediately():
    arf = AutoRateFallback(TABLE, initial=TABLE.base_rate, success_threshold=2)
    arf.on_success()
    arf.on_success()
    assert arf.current_rate().name == "MCS1"  # probing
    arf.on_failure()
    assert arf.current_rate().name == "MCS0"


def test_arf_does_not_step_below_base_or_above_max():
    arf = AutoRateFallback(TABLE, initial=TABLE.base_rate, failure_threshold=1)
    arf.on_failure()
    assert arf.current_rate() is TABLE.base_rate
    arf_top = AutoRateFallback(TABLE, initial=TABLE.max_rate, success_threshold=1)
    arf_top.on_success()
    assert arf_top.current_rate() is TABLE.max_rate


def test_rbar_selects_rate_from_snr_feedback():
    rbar = ReceiverBasedAutoRate(TABLE, margin_db=0.0)
    rbar.on_feedback(5.0)
    assert rbar.current_rate().name == "MCS0"
    rbar.on_feedback(15.0)
    assert rbar.current_rate().name == "MCS3"
    rbar.on_feedback(40.0)
    assert rbar.current_rate().name == "MCS7"


def test_rbar_margin_is_conservative():
    aggressive = ReceiverBasedAutoRate(TABLE, margin_db=0.0)
    conservative = ReceiverBasedAutoRate(TABLE, margin_db=6.0)
    aggressive.on_feedback(20.0)
    conservative.on_feedback(20.0)
    assert (conservative.current_rate().data_rate_bps
            <= aggressive.current_rate().data_rate_bps)


def test_rbar_ignores_success_failure_signals():
    rbar = ReceiverBasedAutoRate(TABLE)
    rate_before = rbar.current_rate()
    rbar.on_success()
    rbar.on_failure()
    assert rbar.current_rate() is rate_before
