"""Unit tests for modulation and coding models."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.phy.coding import CodingRate
from repro.phy.modulation import Modulation, q_function


def test_bits_per_symbol():
    assert Modulation.BPSK.bits_per_symbol == 1
    assert Modulation.QPSK.bits_per_symbol == 2
    assert Modulation.QAM16.bits_per_symbol == 4
    assert Modulation.QAM64.bits_per_symbol == 6


def test_constellation_sizes():
    assert Modulation.BPSK.constellation_size == 2
    assert Modulation.QAM64.constellation_size == 64


def test_q_function_values():
    assert q_function(0.0) == pytest.approx(0.5)
    assert q_function(6.0) < 1e-8
    assert q_function(-6.0) > 1 - 1e-8


def test_ber_decreases_with_snr():
    for modulation in Modulation:
        low = modulation.bit_error_rate(5.0)
        high = modulation.bit_error_rate(25.0)
        assert high <= low


def test_denser_constellations_have_higher_ber_at_same_snr():
    snr = 12.0
    bers = [m.bit_error_rate(snr) for m in
            (Modulation.BPSK, Modulation.QPSK, Modulation.QAM16, Modulation.QAM64)]
    # At the same *symbol* SNR, packing more bits per symbol costs reliability.
    assert bers[0] < bers[1] < bers[2] < bers[3]


def test_bpsk_reliable_at_high_snr():
    assert Modulation.BPSK.bit_error_rate(20.0, coding_rate=0.5) < 1e-12


@given(
    snr=st.floats(min_value=-20.0, max_value=60.0),
    modulation=st.sampled_from(list(Modulation)),
    coding=st.floats(min_value=0.1, max_value=1.0),
)
def test_ber_is_a_probability(snr, modulation, coding):
    ber = modulation.bit_error_rate(snr, coding)
    assert 0.0 <= ber <= 0.5


def test_coding_rate_fractions():
    assert CodingRate.HALF.value_float == pytest.approx(0.5)
    assert CodingRate.TWO_THIRDS.value_float == pytest.approx(2 / 3)
    assert CodingRate.THREE_QUARTERS.value_float == pytest.approx(0.75)
    assert CodingRate.FIVE_SIXTHS.value_float == pytest.approx(5 / 6)
    assert str(CodingRate.THREE_QUARTERS) == "3/4"
    assert CodingRate.HALF.numerator == 1 and CodingRate.HALF.denominator == 2


def test_stronger_codes_have_higher_gain():
    gains = [CodingRate.HALF, CodingRate.TWO_THIRDS, CodingRate.THREE_QUARTERS, CodingRate.FIVE_SIXTHS]
    values = [c.coding_gain_db for c in gains]
    assert values == sorted(values, reverse=True)
