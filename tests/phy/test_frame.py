"""Unit tests for the aggregated PHY frame format."""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.errors import PhyError
from repro.phy.frame import FrameKind, PhyFrame, ReceptionResult
from repro.phy.rates import hydra_rate_table
from repro.phy.timing import PhyTimingConfig

RATES = hydra_rate_table()
TIMING = PhyTimingConfig()


@dataclass
class StubSubframe:
    """Minimal object satisfying the PHY's subframe interface."""

    size_bytes: int


def test_data_frame_sizes_and_counts():
    frame = PhyFrame.data(
        broadcast_subframes=[StubSubframe(160), StubSubframe(160)],
        unicast_subframes=[StubSubframe(1464)],
        unicast_rate=RATES.by_mbps(2.6),
        broadcast_rate=RATES.by_mbps(0.65),
    )
    assert frame.kind is FrameKind.DATA
    assert frame.broadcast_bytes == 320
    assert frame.unicast_bytes == 1464
    assert frame.total_bytes == 1784
    assert frame.subframe_count == 3
    assert frame.has_unicast
    assert not frame.is_broadcast_only


def test_broadcast_only_frame():
    frame = PhyFrame.data([StubSubframe(160)], [], unicast_rate=RATES.by_mbps(1.3))
    assert frame.is_broadcast_only
    assert not frame.has_unicast
    # The broadcast rate defaults to the unicast rate when unspecified.
    assert frame.broadcast_rate is RATES.by_mbps(1.3)


def test_empty_data_frame_rejected():
    with pytest.raises(PhyError):
        PhyFrame.data([], [], unicast_rate=RATES.base_rate)


def test_control_frame_kind_enforced():
    with pytest.raises(PhyError):
        PhyFrame.control_frame(FrameKind.DATA, StubSubframe(14), RATES.base_rate)
    frame = PhyFrame.control_frame(FrameKind.ACK, StubSubframe(14), RATES.base_rate)
    assert frame.kind.is_control
    assert frame.control_bytes == 14
    assert frame.total_bytes == 14


def test_airtime_splits_rates_between_portions():
    bcast_rate = RATES.by_mbps(0.65)
    ucast_rate = RATES.by_mbps(2.6)
    frame = PhyFrame.data([StubSubframe(160)], [StubSubframe(1464)], ucast_rate, bcast_rate)
    expected = TIMING.preamble_duration + 160 * 8 / 0.65e6 + 1464 * 8 / 2.6e6
    assert frame.airtime(TIMING) == pytest.approx(expected)


def test_control_airtime():
    frame = PhyFrame.control_frame(FrameKind.RTS, StubSubframe(20), RATES.base_rate)
    assert frame.airtime(TIMING) == pytest.approx(TIMING.control_airtime(20, RATES.base_rate))


def test_sample_offsets_broadcast_portion_comes_first():
    rate = RATES.by_mbps(0.65)
    frame = PhyFrame.data([StubSubframe(100)], [StubSubframe(200)], rate, rate)
    bcast_offsets, ucast_offsets = frame.sample_offsets(TIMING)
    assert len(bcast_offsets) == 1 and len(ucast_offsets) == 1
    # The unicast subframe ends after the broadcast subframe.
    assert ucast_offsets[0] > bcast_offsets[0]
    assert ucast_offsets[0] == pytest.approx(TIMING.samples_for_bytes(300, rate))


def test_total_samples_counts_both_portions():
    rate = RATES.by_mbps(1.3)
    frame = PhyFrame.data([StubSubframe(100)], [StubSubframe(300)], rate, rate)
    assert frame.total_samples(TIMING) == pytest.approx(TIMING.samples_for_bytes(400, rate))


# ---------------------------------------------------------------------------
# ReceptionResult
# ---------------------------------------------------------------------------

def _make_result(broadcast_ok, unicast_ok):
    frame = PhyFrame.data(
        [StubSubframe(160) for _ in broadcast_ok],
        [StubSubframe(1464) for _ in unicast_ok],
        unicast_rate=RATES.by_mbps(1.3),
    )
    return ReceptionResult(frame=frame, snr_db=25.0, broadcast_ok=list(broadcast_ok),
                           unicast_ok=list(unicast_ok))


def test_all_unicast_ok_requires_every_crc():
    assert _make_result([], [True, True]).all_unicast_ok
    assert not _make_result([], [True, False]).all_unicast_ok
    # A broadcast-only frame has no unicast portion to acknowledge.
    assert not _make_result([True], []).all_unicast_ok


def test_delivered_broadcast_filters_failed_subframes():
    result = _make_result([True, False, True], [])
    assert len(result.delivered_broadcast) == 2


def test_delivered_unicast_is_all_or_nothing():
    """Section 4.2.2: if any unicast CRC fails, all unicast subframes are discarded."""
    good = _make_result([], [True, True, True])
    bad = _make_result([], [True, False, True])
    assert len(good.delivered_unicast) == 3
    assert bad.delivered_unicast == []


def test_any_ok_reflects_partial_success():
    assert _make_result([True], [False]).any_ok
    assert not _make_result([False], [False]).any_ok
