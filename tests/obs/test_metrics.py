"""Unit tests for the metrics registry (repro.obs.metrics)."""

from __future__ import annotations

import json

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    NULL_METRICS,
    Histogram,
    MetricsRegistry,
    _NULL_COUNTER,
    _NULL_GAUGE,
    _NULL_HISTOGRAM,
)


# ---------------------------------------------------------------------------
# Instruments
# ---------------------------------------------------------------------------

def test_counter_increments_per_label_set():
    registry = MetricsRegistry()
    registry.inc("phy.tx_frames", node="n1", kind="data")
    registry.inc("phy.tx_frames", node="n1", kind="data")
    registry.inc("phy.tx_frames", node="n2", kind="data", amount=5)
    assert registry.counter("phy.tx_frames", node="n1", kind="data").value == 2
    assert registry.counter("phy.tx_frames", node="n2", kind="data").value == 5


def test_label_order_is_irrelevant():
    registry = MetricsRegistry()
    a = registry.counter("m", x=1, y=2)
    b = registry.counter("m", y=2, x=1)
    assert a is b


def test_gauge_set_and_add():
    registry = MetricsRegistry()
    gauge = registry.gauge("queue.depth", node="n1")
    gauge.set(4.0)
    gauge.add(-1.5)
    assert registry.gauge("queue.depth", node="n1").value == 2.5


def test_histogram_buckets_count_and_mean():
    histogram = Histogram(bounds=(1.0, 10.0))
    for value in (0.5, 1.0, 5.0, 100.0):
        histogram.observe(value)
    assert histogram.count == 4
    assert histogram.total == 106.5
    assert histogram.bucket_counts == [2, 1, 1]  # <=1, <=10, +Inf
    assert histogram.mean == 106.5 / 4
    assert Histogram().mean == 0.0


def test_histogram_bounds_are_sorted_and_defaulted():
    histogram = Histogram(bounds=(10.0, 1.0, 5.0))
    assert histogram.bounds == (1.0, 5.0, 10.0)
    registry = MetricsRegistry()
    assert registry.histogram("h").bounds == tuple(sorted(DEFAULT_BUCKETS))


# ---------------------------------------------------------------------------
# Disabled registry: zero storage, shared null instruments
# ---------------------------------------------------------------------------

def test_disabled_registry_stores_nothing():
    registry = MetricsRegistry(enabled=False)
    assert registry.counter("a", node="x") is _NULL_COUNTER
    assert registry.gauge("b") is _NULL_GAUGE
    assert registry.histogram("c") is _NULL_HISTOGRAM
    registry.inc("a", node="x")
    registry.set_gauge("b", 1.0)
    registry.observe("c", 2.0)
    registry.register_collector(lambda r: r.set_gauge("d", 1.0))
    assert len(registry) == 0
    snapshot = registry.snapshot()
    assert snapshot == {"counters": [], "gauges": [], "histograms": []}


def test_null_instruments_accept_calls():
    NULL_METRICS.counter("x").inc()
    NULL_METRICS.gauge("y").set(1.0)
    NULL_METRICS.gauge("y").add(1.0)
    NULL_METRICS.histogram("z").observe(3.0)
    assert len(NULL_METRICS) == 0


# ---------------------------------------------------------------------------
# Snapshots
# ---------------------------------------------------------------------------

def _populate(registry: MetricsRegistry, order: str) -> None:
    names = ["b.count", "a.count", "c.count"]
    if order == "reversed":
        names = names[::-1]
    for name in names:
        for node in ("n2", "n1"):
            registry.inc(name, node=node)
    registry.set_gauge("g", 7.0)
    registry.observe("h", 3.0, bounds=(1.0, 5.0))


def test_snapshot_is_deterministically_ordered():
    first, second = MetricsRegistry(), MetricsRegistry()
    _populate(first, "forward")
    _populate(second, "reversed")  # different creation order, same content
    assert first.snapshot() == second.snapshot()
    names = [c["name"] for c in first.snapshot()["counters"]]
    assert names == sorted(names)


def test_snapshot_is_json_serializable():
    registry = MetricsRegistry()
    _populate(registry, "forward")
    payload = json.dumps(registry.snapshot(), sort_keys=True)
    assert json.loads(payload)["histograms"][0]["buckets"][-1]["le"] == "+Inf"


def test_collectors_run_at_snapshot_in_registration_order():
    registry = MetricsRegistry()
    calls = []
    registry.register_collector(lambda r: calls.append("first"))
    registry.register_collector(
        lambda r: (calls.append("second"), r.set_gauge("harvested", 9.0)))
    assert calls == []
    snapshot = registry.snapshot()
    assert calls == ["first", "second"]
    assert snapshot["gauges"] == [{"name": "harvested", "labels": {}, "value": 9.0}]
