"""Unit tests for the Chrome trace-event exporter (repro.obs.timeline)."""

from __future__ import annotations

import json

from repro.obs.timeline import (
    chrome_trace_document,
    chrome_trace_events,
    export_chrome_trace,
)
from repro.sim.trace import TraceRecord


def _record(time, source, category, event, **fields):
    return TraceRecord(time=time, source=source, category=category,
                       event=event, fields=fields)


def test_instant_events_with_node_and_lane_tracks():
    records = [
        _record(0.001, "node1.mac", "mac", "enqueue", queue="ucast"),
        _record(0.002, "node2.mac", "mac", "enqueue", queue="bcast"),
    ]
    events = chrome_trace_events(records)
    instants = [e for e in events if e["ph"] == "i"]
    assert len(instants) == 2
    assert instants[0]["ts"] == 1000.0  # microseconds
    assert instants[0]["args"] == {"queue": "ucast"}
    process_names = {e["args"]["name"] for e in events
                     if e["ph"] == "M" and e["name"] == "process_name"}
    thread_names = {e["args"]["name"] for e in events
                    if e["ph"] == "M" and e["name"] == "thread_name"}
    assert process_names == {"node1", "node2"}
    assert thread_names == {"mac"}
    # node1 and node2 are distinct processes
    assert instants[0]["pid"] != instants[1]["pid"]


def test_tx_start_end_pairs_become_duration_slices():
    records = [
        _record(0.010, "node1.phy", "phy", "tx_start", kind="data", bytes=500),
        _record(0.012, "node1.phy", "phy", "tx_end", kind="data"),
    ]
    events = chrome_trace_events(records)
    slices = [e for e in events if e["ph"] == "X"]
    assert len(slices) == 1
    (tx,) = slices
    assert tx["name"] == "tx"
    assert tx["ts"] == 10_000.0
    assert abs(tx["dur"] - 2000.0) < 1e-6
    assert tx["args"]["bytes"] == 500
    # The end record was folded into the slice, not emitted as an instant.
    assert not [e for e in events if e["ph"] == "i"]


def test_unmatched_tx_end_degrades_to_instant():
    events = chrome_trace_events([_record(0.5, "node1.phy", "phy", "tx_end")])
    assert [e["ph"] for e in events if e["name"] == "tx_end"] == ["i"]


def test_track_ids_are_deterministic_across_arrival_orders():
    records = [
        _record(0.001, "nodeB.phy", "phy", "rx_end"),
        _record(0.002, "nodeA.mac", "mac", "enqueue"),
    ]
    ids_forward = {(e["name"], e["args"]["name"]): (e["pid"], e.get("tid"))
                   for e in chrome_trace_events(records) if e["ph"] == "M"}
    ids_reversed = {(e["name"], e["args"]["name"]): (e["pid"], e.get("tid"))
                    for e in chrome_trace_events(records[::-1]) if e["ph"] == "M"}
    assert ids_forward == ids_reversed


def test_multi_sim_merge_prefixes_process_names():
    groups = [
        ("sim0/", [_record(0.001, "node1.phy", "phy", "rx_end")]),
        ("sim1/", [_record(0.001, "node1.phy", "phy", "rx_end")]),
    ]
    document = chrome_trace_document(groups)
    assert document["displayTimeUnit"] == "ms"
    names = {e["args"]["name"] for e in document["traceEvents"]
             if e["ph"] == "M" and e["name"] == "process_name"}
    assert names == {"sim0/node1", "sim1/node1"}


def test_export_writes_valid_json(tmp_path):
    path = tmp_path / "timeline.json"
    count = export_chrome_trace(
        [("", [_record(0.001, "node1.phy", "phy", "tx_start"),
               _record(0.002, "node1.phy", "phy", "tx_end")])], str(path))
    document = json.loads(path.read_text())
    assert len(document["traceEvents"]) == count
    assert {e["ph"] for e in document["traceEvents"]} == {"M", "X"}
