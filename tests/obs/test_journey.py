"""Unit tests for the journey flight recorder, waterfalls and the audit.

These drive :mod:`repro.obs.journey` with hand-crafted journeys (fake
packets, explicit timestamps) so every custody transition, fate and
waterfall component is pinned independently of the simulator.  The
integration-level guarantees (byte-neutrality, audits balancing on real
experiments) live in ``tests/integration/test_obs_determinism.py``.
"""

from __future__ import annotations

import itertools

import pytest

from repro.obs.journey import (
    NULL_JOURNEY,
    JourneyRecorder,
    conservation_audit,
    flow_arrows,
    flow_summaries,
    format_flow_report,
    journey_document,
    journey_outcome,
    journey_waterfall,
    node_of,
)
from repro.obs.timeline import chrome_trace_events

_UIDS = itertools.count(1)


class _Ip:
    def __init__(self, src: str, dst: str, protocol: str) -> None:
        self.src = src
        self.dst = dst
        self.protocol = protocol


class _Packet:
    def __init__(self, src: str = "10.0.0.1", dst: str = "10.0.0.2",
                 protocol: str = "udp", payload_bytes: int = 100) -> None:
        self.uid = next(_UIDS)
        self.ip = _Ip(src, dst, protocol)
        self.payload_bytes = payload_bytes


def _recorder(**kwargs) -> JourneyRecorder:
    kwargs.setdefault("enabled", True)
    return JourneyRecorder(**kwargs)


# ----------------------------------------------------------------------
# Recorder mechanics
# ----------------------------------------------------------------------
def test_node_of_strips_the_layer_suffix():
    assert node_of("node1.mac", "mac") == "node1"
    assert node_of("node1.phy", "phy") == "node1"
    # Unconventional names (hand-wired tests) pass through unchanged.
    assert node_of("standalone", "mac") == "standalone"


def test_begin_is_idempotent_and_record_is_a_noop_when_untracked():
    recorder = _recorder()
    packet = _Packet()
    recorder.begin(0.0, "node1", "net", packet, event="origin")
    recorder.begin(0.1, "node1", "net", packet, event="reinject")
    assert len(recorder) == 1
    journey = recorder.journeys[0]
    assert [ev.event for ev in journey.events] == ["origin", "reinject"]
    assert (journey.src, journey.dst, journey.protocol) == \
        ("10.0.0.1", "10.0.0.2", "udp")
    # An AODV probe (or any packet that never passed begin) is ignored.
    recorder.record(0.2, "node1", "mac", "enqueue", _Packet())
    assert len(recorder) == 1


def test_cap_counts_overflow_and_keeps_capped_packets_untracked():
    recorder = _recorder(max_journeys=1)
    first, second = _Packet(), _Packet()
    recorder.begin(0.0, "node1", "net", first, event="origin")
    recorder.begin(0.1, "node1", "net", second, event="origin")
    assert len(recorder) == 1
    assert recorder.dropped == 1
    recorder.record(0.2, "node1", "mac", "enqueue", second)
    assert len(recorder.journeys[0].events) == 1
    audit = conservation_audit(recorder)
    assert audit["truncated"] == 1


def test_null_journey_is_disabled():
    assert NULL_JOURNEY.enabled is False
    assert len(NULL_JOURNEY) == 0


# ----------------------------------------------------------------------
# Custody outcomes and the audit
# ----------------------------------------------------------------------
def _delivered_two_hop(recorder: JourneyRecorder) -> _Packet:
    """node1 -> node2 (relay) -> node3, clean delivery, known timestamps."""
    packet = _Packet(dst="10.0.0.3")
    recorder.begin(0.0, "node1", "net", packet, event="origin")
    recorder.record(0.001, "node1", "mac", "enqueue", packet)
    recorder.record(0.003, "node1", "mac", "aggregate", packet)
    recorder.record(0.004, "node1", "mac", "tx", packet)
    recorder.record(0.006, "node1", "mac", "acked", packet)
    recorder.record(0.006, "node2", "mac", "deliver", packet)
    recorder.record(0.006, "node2", "net", "forward", packet)
    recorder.record(0.007, "node2", "mac", "enqueue", packet)
    recorder.record(0.010, "node2", "mac", "aggregate", packet)
    recorder.record(0.012, "node2", "mac", "tx", packet)
    recorder.record(0.013, "node2", "mac", "retry", packet)
    recorder.record(0.015, "node2", "mac", "tx", packet)
    recorder.record(0.017, "node2", "mac", "acked", packet)
    recorder.record(0.017, "node3", "mac", "deliver", packet)
    recorder.record(0.017, "node3", "net", "deliver", packet)
    return packet


def test_delivered_journey_balances_on_every_node():
    recorder = _recorder()
    _delivered_two_hop(recorder)
    outcome = journey_outcome(recorder.journeys[0])
    assert outcome.fate == "delivered"
    assert outcome.transferred == {"node1": 1, "node2": 1}
    assert outcome.delivered == {"node3": 1}
    audit = conservation_audit(recorder)
    assert audit["balanced"], audit
    assert audit["nodes"]["node1"] == {
        "originated": 1, "received": 0, "delivered": 0, "transferred": 1,
        "drops": {}, "in_flight": {}, "leaked": 0, "balanced": True}
    assert audit["nodes"]["node3"]["delivered"] == 1
    assert audit["totals"]["leaked"] == 0


def test_drop_reason_is_ledgered_and_becomes_the_fate():
    recorder = _recorder()
    packet = _Packet()
    recorder.begin(0.0, "node1", "net", packet, event="origin")
    recorder.record(0.001, "node1", "mac", "drop", packet,
                    reason="queue_full")
    outcome = journey_outcome(recorder.journeys[0])
    assert outcome.fate == "dropped"
    assert outcome.fate_reason == "queue_full"
    audit = conservation_audit(recorder)
    assert audit["balanced"]
    assert audit["nodes"]["node1"]["drops"] == {"queue_full": 1}


def test_transport_drop_reclassifies_a_network_delivery():
    recorder = _recorder()
    packet = _Packet()
    recorder.begin(0.0, "node1", "net", packet, event="origin")
    recorder.record(0.001, "node1", "mac", "enqueue", packet)
    recorder.record(0.002, "node1", "mac", "tx", packet)
    recorder.record(0.003, "node1", "mac", "acked", packet)
    recorder.record(0.003, "node2", "mac", "deliver", packet)
    recorder.record(0.003, "node2", "net", "deliver", packet)
    recorder.record(0.003, "node2", "udp", "drop", packet, reason="no_port")
    outcome = journey_outcome(recorder.journeys[0])
    assert outcome.fate == "dropped"
    assert outcome.fate_reason == "no_port"
    assert sum(outcome.delivered.values()) == 0
    assert conservation_audit(recorder)["balanced"]


def test_in_flight_positions_balance_without_leaking():
    recorder = _recorder()
    packet = _Packet()
    recorder.begin(0.0, "node1", "net", packet, event="origin")
    recorder.record(0.001, "node1", "mac", "enqueue", packet)
    outcome = journey_outcome(recorder.journeys[0])
    assert outcome.fate == "in_flight"
    assert outcome.in_flight == {"node1": "mac.enqueue"}
    audit = conservation_audit(recorder)
    assert audit["balanced"]
    assert audit["nodes"]["node1"]["in_flight"] == {"mac.enqueue": 1}


def test_open_custody_on_a_non_position_event_is_a_leak():
    recorder = _recorder()
    packet = _Packet()
    recorder.begin(0.0, "node1", "net", packet, event="origin")
    # "forward" hands the packet back toward the MAC; a journey that *ends*
    # there lost custody without an exit event — the audit must fail.
    recorder.record(0.001, "node1", "net", "forward", packet)
    outcome = journey_outcome(recorder.journeys[0])
    assert outcome.fate == "leaked"
    audit = conservation_audit(recorder)
    assert not audit["balanced"]
    assert audit["violations"][0]["kind"] == "leak"
    assert audit["violations"][0]["last_event"] == "net.forward"
    assert audit["nodes"]["node1"]["leaked"] == 1


def test_spurious_drop_surfaces_as_an_imbalance_not_a_pass():
    recorder = _recorder()
    packet = _Packet()
    recorder.begin(0.0, "node1", "net", packet, event="origin")
    recorder.record(0.001, "node1", "mac", "enqueue", packet)
    recorder.record(0.002, "node1", "mac", "drop", packet, reason="x")
    # A second drop with no custody open pushes delivered negative.
    recorder.record(0.003, "node1", "mac", "drop", packet, reason="x")
    audit = conservation_audit(recorder)
    assert not audit["balanced"]
    assert any(v["kind"] == "imbalance" for v in audit["violations"])


def test_unheard_broadcast_is_lost_on_air():
    recorder = _recorder()
    packet = _Packet(dst="255.255.255.255")
    recorder.begin(0.0, "node1", "net", packet, event="origin")
    recorder.record(0.001, "node1", "mac", "enqueue", packet)
    recorder.record(0.002, "node1", "mac", "tx", packet)
    recorder.record(0.003, "node1", "mac", "sent_unacked", packet)
    outcome = journey_outcome(recorder.journeys[0])
    assert outcome.fate == "lost_on_air"
    assert conservation_audit(recorder)["balanced"]


# ----------------------------------------------------------------------
# Waterfalls
# ----------------------------------------------------------------------
def test_waterfall_attribution_is_exact_on_a_two_hop_journey():
    recorder = _recorder()
    _delivered_two_hop(recorder)
    waterfall = journey_waterfall(recorder.journeys[0])
    assert waterfall is not None
    assert waterfall["total"] == pytest.approx(0.017)
    assert waterfall["attribution"] == pytest.approx(1.0)
    components = waterfall["components"]
    # Hop 1: fwd 0.001, queue 0.002, agg 0.001, retries 0, air 0.002.
    # Hop 2: fwd 0.001, queue 0.003, agg 0.002, retries 0.003, air 0.002.
    assert components["forwarding"] == pytest.approx(0.002)
    assert components["queue"] == pytest.approx(0.005)
    assert components["aggregation"] == pytest.approx(0.003)
    assert components["retries"] == pytest.approx(0.003)
    assert components["airtime"] == pytest.approx(0.004)
    assert [hop["node"] for hop in waterfall["hops"]] == ["node1", "node2"]
    assert waterfall["hops"][1]["retry_count"] == 1


def test_waterfall_is_none_for_broadcast_and_undelivered_journeys():
    recorder = _recorder()
    flood = _Packet(dst="255.255.255.255")
    recorder.begin(0.0, "node1", "net", flood, event="origin")
    stuck = _Packet()
    recorder.begin(0.0, "node1", "net", stuck, event="origin")
    recorder.record(0.001, "node1", "mac", "enqueue", stuck)
    assert journey_waterfall(recorder.journeys[0]) is None
    assert journey_waterfall(recorder.journeys[1]) is None


# ----------------------------------------------------------------------
# Flow summaries, report text, exports
# ----------------------------------------------------------------------
def test_flow_summaries_group_by_flow_and_average_components():
    recorder = _recorder()
    _delivered_two_hop(recorder)
    dropped = _Packet(dst="10.0.0.3")
    recorder.begin(1.0, "node1", "net", dropped, event="origin")
    recorder.record(1.001, "node1", "mac", "drop", dropped,
                    reason="queue_full")
    other = _Packet(src="10.0.0.9", dst="10.0.0.3")
    recorder.begin(2.0, "node9", "net", other, event="origin")

    summaries = flow_summaries(recorder)
    assert len(summaries) == 2
    flow = next(s for s in summaries if s["src"] == "10.0.0.1")
    assert flow["journeys"] == 2
    assert flow["fates"] == {"delivered": 1, "dropped": 1}
    assert flow["drop_reasons"] == {"queue_full": 1}
    assert flow["measured"] == 1
    assert flow["attribution"] == pytest.approx(1.0)
    assert [hop["node"] for hop in flow["hops"]] == ["node1", "node2"]

    filtered = flow_summaries(recorder, src="10.0.0.9")
    assert len(filtered) == 1 and filtered[0]["measured"] == 0

    report = format_flow_report(summaries)
    assert "flow 10.0.0.1 -> 10.0.0.3 (udp)" in report
    assert "queue_full 1" in report
    assert "attribution 100.0%" in report
    assert "hop 2 node2" in report
    assert format_flow_report([]) == "no matching journeys"


def test_journey_document_carries_fates_waterfalls_and_the_audit():
    recorder = _recorder()
    _delivered_two_hop(recorder)
    document = journey_document(recorder)
    entry = document["journeys"][0]
    assert entry["fate"] == "delivered"
    assert entry["waterfall"]["attribution"] == pytest.approx(1.0)
    assert entry["events"][0]["event"] == "origin"
    assert document["audit"]["balanced"]
    assert journey_document(recorder, include_events=False)["journeys"][0].get(
        "events") is None


def test_flow_arrows_skip_broadcasts_and_respect_the_cap():
    recorder = _recorder()
    _delivered_two_hop(recorder)
    flood = _Packet(dst="255.255.255.255")
    recorder.begin(0.0, "node1", "net", flood, event="origin")
    recorder.record(0.002, "node2", "mac", "deliver", flood)
    arrows = flow_arrows(recorder)
    assert len(arrows) == 1
    points = arrows[0]["points"]
    assert [node for _, node, _ in points] == ["node1", "node2", "node3",
                                               "node3"]
    _delivered_two_hop(recorder)
    assert len(flow_arrows(recorder, max_arrows=1)) == 1


def test_flow_arrows_render_as_chrome_flow_events():
    recorder = _recorder()
    _delivered_two_hop(recorder)
    events = chrome_trace_events([], flows=flow_arrows(recorder))
    flow_events = [ev for ev in events if ev.get("cat") == "journey"]
    assert [ev["ph"] for ev in flow_events] == ["s", "t", "t", "f"]
    assert flow_events[-1]["bp"] == "e"
    assert len({ev["id"] for ev in flow_events}) == 1
