"""Tests for the ambient observability session and the obs CLI."""

from __future__ import annotations

import json

import pytest

from repro.obs.cli import main as obs_main
from repro.obs.metrics import NULL_METRICS
from repro.obs.session import ObsConfig, ObsSession, active_session, observe
from repro.sim import Simulator


# ---------------------------------------------------------------------------
# Session adoption
# ---------------------------------------------------------------------------

def test_no_session_leaves_simulator_unobserved():
    assert active_session() is None
    sim = Simulator(seed=1)
    assert sim.metrics is NULL_METRICS
    assert sim.capture is None
    assert sim.profiler is None
    assert not sim.tracer.enabled


def test_observe_adopts_simulators_created_inside():
    with observe(trace=True, metrics=True, capture=True, profile=True,
                 max_trace_records=123) as session:
        assert active_session() is session
        first = Simulator(seed=1)
        second = Simulator(seed=2)
    assert active_session() is None
    assert session.simulators == [first, second]
    for sim in (first, second):
        assert sim.tracer.enabled
        assert sim.tracer.max_records == 123
        assert sim.metrics.enabled
        assert sim.metrics is not NULL_METRICS
        assert sim.capture is session.capture
        assert sim.profiler is session.profiler
    # metrics registries are per-simulator, capture/profiler are shared
    assert first.metrics is not second.metrics


def test_observe_features_are_independent():
    with observe(metrics=True) as session:
        sim = Simulator(seed=1)
    assert session.capture is None
    assert session.profiler is None
    assert not sim.tracer.enabled
    assert sim.metrics.enabled


def test_sessions_do_not_nest():
    with observe(trace=True):
        with pytest.raises(RuntimeError, match="already active"):
            with observe(metrics=True):
                pass  # pragma: no cover
    assert active_session() is None


def test_session_cleared_even_on_error():
    with pytest.raises(ValueError):
        with observe(trace=True):
            raise ValueError("boom")
    assert active_session() is None


def test_config_any_enabled():
    assert not ObsConfig().any_enabled
    assert ObsConfig(trace=True).any_enabled
    assert ObsConfig(profile=True).any_enabled


# ---------------------------------------------------------------------------
# Exports
# ---------------------------------------------------------------------------

def _traced_session():
    with observe(trace=True, metrics=True) as session:
        for seed in (1, 2):
            sim = Simulator(seed=seed)
            sim.tracer.emit("node1.phy", "phy", "tx_start")
            sim.tracer.emit("node1.phy", "phy", "tx_end")
            sim.metrics.inc("demo.counter", node="n1")
    return session


def test_timeline_merges_sims_with_prefixes(tmp_path):
    session = _traced_session()
    document = session.timeline_document()
    names = {e["args"]["name"] for e in document["traceEvents"]
             if e["ph"] == "M" and e["name"] == "process_name"}
    assert names == {"sim0/node1", "sim1/node1"}
    path = tmp_path / "timeline.json"
    count = session.export_timeline(str(path))
    assert len(json.loads(path.read_text())["traceEvents"]) == count


def test_single_traced_sim_gets_no_prefix():
    with observe(trace=True) as session:
        sim = Simulator(seed=1)
        sim.tracer.emit("node1.phy", "phy", "rx_end")
    names = {e["args"]["name"] for e in session.timeline_document()["traceEvents"]
             if e["ph"] == "M" and e["name"] == "process_name"}
    assert names == {"node1"}


def test_metrics_document_and_export(tmp_path):
    session = _traced_session()
    document = session.metrics_document()
    assert [s["simulation"] for s in document["simulations"]] == [0, 1]
    assert document["simulations"][0]["metrics"]["counters"][0]["name"] == \
        "demo.counter"
    path = tmp_path / "metrics.json"
    session.export_metrics(str(path))
    assert json.loads(path.read_text()) == json.loads(
        json.dumps(document, default=repr))


def test_export_capture_requires_capture_enabled(tmp_path):
    session = ObsSession(ObsConfig(trace=True))
    with pytest.raises(ValueError, match="capture"):
        session.export_capture(str(tmp_path / "frames.jsonl"))


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def test_cli_requires_at_least_one_export(capsys):
    exit_code = obs_main(["run", "fig09", "--seed", "1"])
    assert exit_code == 2
    assert "nothing to observe" in capsys.readouterr().err


def test_cli_run_writes_all_exports(tmp_path, capsys):
    trace_path = tmp_path / "timeline.json"
    metrics_path = tmp_path / "metrics.json"
    capture_path = tmp_path / "frames.jsonl"
    out_path = tmp_path / "result.json"
    exit_code = obs_main([
        "run", "fig09", "--seed", "1",
        "--set", "flooding_intervals=(2.0,)", "--set", "duration=2.0",
        "--trace-out", str(trace_path),
        "--metrics-out", str(metrics_path),
        "--capture-out", str(capture_path),
        "--profile",
        "--out", str(out_path),
    ])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "simulator(s) observed" in output
    assert "where time goes" in output

    document = json.loads(trace_path.read_text())
    assert document["traceEvents"]
    assert {e["ph"] for e in document["traceEvents"]} <= {"M", "X", "i"}

    metrics = json.loads(metrics_path.read_text())
    assert metrics["simulations"]
    assert metrics["simulations"][0]["metrics"]["counters"]

    lines = capture_path.read_text().strip().splitlines()
    assert lines and all(json.loads(line)["dir"] in ("tx", "rx")
                         for line in lines)
    assert json.loads(out_path.read_text())


def test_cli_journey_export_flow_report_and_audit(tmp_path, capsys):
    journey_path = tmp_path / "journeys.json"
    trace_path = tmp_path / "timeline.json"
    exit_code = obs_main([
        "run", "fig09", "--seed", "1",
        "--set", "rates_mbps=(0.65,)",
        "--set", "flooding_intervals=(0.5,)", "--set", "duration=2.0",
        "--journey-out", str(journey_path),
        "--trace-out", str(trace_path),
        "--flow", "10.0.0.1,10.0.0.3",
    ])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "packet journey(s)" in output
    assert "flow 10.0.0.1 -> 10.0.0.3" in output
    assert "conservation audit: balanced on every node" in output

    document = json.loads(journey_path.read_text())
    for sim in document["simulations"]:
        assert sim["audit"]["balanced"]
        assert sim["journeys"] and sim["flows"]
    # With journeys on, the timeline gains s/t/f flow-arrow events.
    trace = json.loads(trace_path.read_text())
    phases = {e["ph"] for e in trace["traceEvents"]}
    assert {"s", "t", "f"} <= phases


def test_cli_flow_requires_src_comma_dst(capsys):
    exit_code = obs_main(["run", "fig09", "--journey-out", "/dev/null",
                          "--flow", "nocomma"])
    assert exit_code == 2
    assert "--flow expects SRC,DST" in capsys.readouterr().err


def test_cli_unknown_experiment_is_an_error(capsys):
    exit_code = obs_main(["run", "does-not-exist", "--trace-out", "/dev/null"])
    assert exit_code == 2
    assert "error:" in capsys.readouterr().err
