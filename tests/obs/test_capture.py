"""Unit tests for the PHY/MAC frame capture (repro.obs.capture)."""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Optional

from repro.obs.capture import FrameCapture
from repro.phy.frame import FrameKind, PhyFrame, ReceptionResult
from repro.phy.rates import hydra_rate_table

RATE = hydra_rate_table().by_mbps(0.65)


@dataclass
class StubPhy:
    name: str = "node1.phy"


@dataclass
class StubSubframe:
    size_bytes: int
    src: str = "02:00:00:00:00:01"
    dst: str = "02:00:00:00:00:02"
    sequence: int = 7
    retries: int = 1
    packet: Optional[object] = None


@dataclass
class StubControl:
    size_bytes: int = 20
    src: str = "02:00:00:00:00:01"
    dst: str = "02:00:00:00:00:02"


def data_frame():
    return PhyFrame.data([StubSubframe(160)], [StubSubframe(1464)], RATE)


def test_record_tx_data_frame_entry():
    capture = FrameCapture()
    capture.record_tx(0.25, StubPhy(), data_frame(), duration=0.01)
    (entry,) = capture.entries
    assert entry["t"] == 0.25
    assert entry["node"] == "node1.phy"
    assert entry["dir"] == "tx"
    assert entry["kind"] == "data"
    assert entry["bytes"] == 160 + 1464
    assert entry["rate_mbps"] == 0.65
    assert entry["airtime"] == 0.01
    portions = [(sf["portion"], sf["bytes"], sf["retries"])
                for sf in entry["subframes"]]
    assert portions == [("bcast", 160, 1), ("ucast", 1464, 1)]


def test_record_tx_control_frame_entry():
    capture = FrameCapture()
    frame = PhyFrame.control_frame(FrameKind.RTS, StubControl(), RATE)
    capture.record_tx(0.5, StubPhy(), frame, duration=0.001)
    (entry,) = capture.entries
    assert entry["kind"] == "rts"
    assert entry["control"]["dst"] == "02:00:00:00:00:02"
    assert entry["control"]["src"] == "02:00:00:00:00:01"
    assert "subframes" not in entry


def test_record_rx_outcome_fields():
    capture = FrameCapture()
    result = ReceptionResult(frame=data_frame(), snr_db=17.456, collided=False,
                             broadcast_ok=[True], unicast_ok=[False])
    capture.record_rx(1.0, StubPhy("node2.phy"), result)
    (entry,) = capture.entries
    assert entry["dir"] == "rx"
    assert entry["snr_db"] == 17.46
    assert entry["collided"] is False
    assert entry["captured"] is True
    assert entry["decoded"] is True
    assert entry["broadcast_crc_ok"] == [True]
    assert entry["unicast_crc_ok"] == [False]


def test_max_frames_counts_drops():
    capture = FrameCapture(max_frames=1)
    for _ in range(3):
        capture.record_tx(0.0, StubPhy(), data_frame(), duration=0.01)
    assert len(capture) == 1
    assert capture.dropped == 2


def test_jsonl_round_trip(tmp_path):
    capture = FrameCapture()
    capture.record_tx(0.1, StubPhy(), data_frame(), duration=0.01)
    result = ReceptionResult(frame=data_frame(), snr_db=20.0, collided=True)
    capture.record_rx(0.2, StubPhy("node2.phy"), result)
    path = tmp_path / "frames.jsonl"
    assert capture.to_jsonl(str(path)) == 2
    lines = path.read_text().strip().splitlines()
    entries = [json.loads(line) for line in lines]
    assert [e["dir"] for e in entries] == ["tx", "rx"]
    assert entries[1]["captured"] is False
