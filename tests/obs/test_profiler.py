"""Unit tests for the hot-path profiler (repro.obs.profiler)."""

from __future__ import annotations

import pytest

from repro.mac.dcf import AggregatingMac
from repro.obs.profiler import SCHEDULER_CATEGORY, HotPathProfiler, categorize
from repro.sim import Simulator


# ---------------------------------------------------------------------------
# Categorisation
# ---------------------------------------------------------------------------

def test_categorize_layer_and_class():
    assert categorize(AggregatingMac._begin_exchange) == "mac/AggregatingMac"


def test_categorize_module_level_function():
    from repro.sim import simulator
    assert categorize(simulator.Simulator.run).startswith("sim/")


def test_categorize_plain_function_without_class():
    def helper():
        pass
    helper.__module__ = "repro.net.routing"
    assert categorize(helper) == "net"


def test_categorize_unknown_module_falls_back():
    def helper():
        pass
    helper.__module__ = "collections.abc"
    assert categorize(helper) == "collections"


def test_category_for_caches_bound_methods():
    profiler = HotPathProfiler()

    class Thing:
        def cb(self):
            pass

    a, b = Thing(), Thing()
    first = profiler.category_for(a.cb)
    second = profiler.category_for(b.cb)
    assert first == second
    assert len(profiler._category_cache) == 1


# ---------------------------------------------------------------------------
# Accounting
# ---------------------------------------------------------------------------

def test_record_and_loop_accounting():
    profiler = HotPathProfiler()
    profiler.record("mac/AggregatingMac", 0.3)
    profiler.record("mac/AggregatingMac", 0.1)
    profiler.record("phy/Phy", 0.2)
    profiler.record_loop(1.0, callback_seconds=0.6)
    snap = profiler.snapshot()
    assert snap["events"] == 3
    assert snap["loop_seconds"] == 1.0
    rows = {row["category"]: row for row in snap["categories"]}
    assert rows["mac/AggregatingMac"]["events"] == 2
    assert rows["mac/AggregatingMac"]["seconds"] == pytest.approx(0.4)
    assert rows[SCHEDULER_CATEGORY]["seconds"] == pytest.approx(0.4)
    # scheduler rows count no events of their own
    assert rows[SCHEDULER_CATEGORY]["events"] == 0
    assert snap["attributed_fraction"] == pytest.approx(1.0)
    # sorted by descending seconds
    ordered = [row["category"] for row in snap["categories"]]
    assert ordered[0] in ("mac/AggregatingMac", SCHEDULER_CATEGORY)
    assert ordered == sorted(
        ordered, key=lambda c: (-rows[c]["seconds"], c))


def test_attributed_fraction_capped_at_one():
    profiler = HotPathProfiler()
    profiler.record("sim", 2.0)
    profiler.record_loop(1.0, callback_seconds=2.0)
    assert profiler.snapshot()["attributed_fraction"] == 1.0


def test_to_text_contains_table_rows():
    profiler = HotPathProfiler()
    profiler.record("phy/Phy", 0.5)
    profiler.record_loop(0.5, callback_seconds=0.5)
    text = profiler.to_text()
    assert "where time goes" in text
    assert "phy/Phy" in text
    assert "attributed" in text


# ---------------------------------------------------------------------------
# Profiled simulator run
# ---------------------------------------------------------------------------

def test_profiled_run_attributes_all_events():
    sim = Simulator(seed=1)
    sim.profiler = HotPathProfiler()
    hits = []
    for t in (0.1, 0.2, 0.3):
        sim.schedule(t, hits.append, t)
    sim.run()
    assert hits == [0.1, 0.2, 0.3]
    snap = sim.profiler.snapshot()
    assert snap["events"] == 3
    assert snap["loop_seconds"] > 0.0
    assert SCHEDULER_CATEGORY in {row["category"] for row in snap["categories"]}


def test_profiled_run_matches_unprofiled_event_order():
    def drive(sim):
        order = []
        sim.schedule(0.2, order.append, "b")
        sim.schedule(0.1, order.append, "a")
        sim.schedule(0.1, order.append, "a2")
        sim.run()
        return order, sim.events_processed

    plain_sim = Simulator(seed=5)
    plain = drive(plain_sim)
    profiled_sim = Simulator(seed=5)
    profiled_sim.profiler = HotPathProfiler()
    profiled = drive(profiled_sim)
    assert plain == profiled
